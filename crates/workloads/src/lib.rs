//! # dsg-workloads — communication-sequence generators
//!
//! The paper motivates self-adjustment with *skewed* communication patterns:
//! "most real-world communication patterns are skewed". This crate provides
//! the request-sequence generators the evaluation harness uses to exercise
//! the self-adjusting skip graph and its baselines:
//!
//! * [`UniformRandom`] — no skew at all (the adversarial regime for
//!   self-adjustment),
//! * [`ZipfPairs`] — source and destination drawn from Zipf distributions
//!   with configurable exponent (the classic skew model),
//! * [`RepeatedPairs`] — a small fixed set of pairs replayed round-robin
//!   (the pattern of Figures 2 and 3),
//! * [`RotatingHotSet`] — temporal locality: a hot community that drifts
//!   over time (the "working set" workload),
//! * [`Datacenter`] — the multi-level locality workload of the paper's
//!   conclusion (rack / pod / datacenter levels, as in VM migration),
//! * [`Adversarial`] — a non-repeating permutation stream with no locality
//!   to exploit,
//! * [`FlashCrowd`] — uniform background with a sudden burst window where a
//!   few fixed pairs dominate (the adaptation-policy stress pattern),
//! * [`HotSetDrift`] — a contiguous hot window sliding over the key space
//!   (exercises frequency-sketch aging).
//!
//! [`OpenLoop`] wraps any of them into an **open-loop arrival schedule**
//! at a fixed offered rate, for driving a service *into* overload instead
//! of at whatever rate it sustains.
//!
//! All generators implement the [`Workload`] trait, are deterministic given
//! a seed, and produce [`Request`] values over peer keys `0..n`.
//!
//! # Example
//!
//! ```rust
//! use dsg_workloads::{Workload, ZipfPairs};
//!
//! let mut workload = ZipfPairs::new(64, 1.2, 42);
//! let trace = workload.generate(1000);
//! assert_eq!(trace.len(), 1000);
//! assert!(trace
//!     .iter()
//!     .all(|r| r.pair().0 != r.pair().1 && r.pair().0 < 64 && r.pair().1 < 64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod datacenter;
pub mod flash_crowd;
pub mod hot_set_drift;
pub mod hotset;
pub mod open_loop;
pub mod repeated;
pub mod trace;
pub mod uniform;
pub mod zipf;

pub use datacenter::Datacenter;
pub use flash_crowd::FlashCrowd;
pub use hot_set_drift::HotSetDrift;
pub use hotset::RotatingHotSet;
pub use open_loop::{Arrival, OpenLoop};
pub use repeated::RepeatedPairs;
pub use trace::{Request, Trace};
pub use uniform::{Adversarial, UniformRandom};
pub use zipf::ZipfPairs;

/// A generator of communication requests over peers `0..n`.
pub trait Workload {
    /// Number of peers the workload addresses.
    fn peers(&self) -> u64;

    /// Produces the next request. Implementations never return a
    /// self-request (`u == v`).
    fn next_request(&mut self) -> Request;

    /// Generates a trace of `m` requests.
    fn generate(&mut self, m: usize) -> Trace {
        (0..m).map(|_| self.next_request()).collect()
    }
}
