//! Open-loop offered-load schedules.
//!
//! A closed-loop driver (submit, wait, submit) can never overload a
//! service: its offered rate collapses to whatever the service sustains.
//! Measuring overload behaviour — shedding, brownout, sojourn growth —
//! needs an **open-loop** schedule: requests arrive at a fixed offered
//! rate regardless of how the service is doing, exactly like an external
//! client population would. [`OpenLoop`] wraps any [`Workload`] into such
//! a schedule: the `i`-th request is due `i / rate` seconds after the
//! schedule's start, as a plain [`Duration`] offset the driver sleeps
//! until (or past — a slow driver naturally models coordinated omission
//! on the producer side, not the service's).
//!
//! The schedule is pure data — no clock reads, no service dependency — so
//! it is deterministic given the inner workload's seed and directly
//! testable.

use crate::trace::Request;
use crate::Workload;
use std::time::Duration;

/// One scheduled arrival: the offset from the schedule's start at which
/// the request is due, and the request itself.
pub type Arrival = (Duration, Request);

/// An open-loop arrival schedule at a fixed offered rate over any inner
/// [`Workload`]. See the [module docs](self).
#[derive(Debug)]
pub struct OpenLoop<W> {
    inner: W,
    /// Offered rate in requests per second (> 0).
    rate_rps: u64,
    /// Index of the next arrival.
    next: u64,
}

impl<W: Workload> OpenLoop<W> {
    /// Wraps `inner` into an open-loop schedule offering `rate_rps`
    /// requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` is 0 — a zero offered rate is not a schedule.
    pub fn new(inner: W, rate_rps: u64) -> Self {
        assert!(rate_rps > 0, "the offered rate must be positive");
        OpenLoop {
            inner,
            rate_rps,
            next: 0,
        }
    }

    /// The offered rate in requests per second.
    pub fn rate_rps(&self) -> u64 {
        self.rate_rps
    }

    /// The due time of arrival index `i`: `i / rate` seconds after start,
    /// computed in integer nanoseconds so long schedules do not drift.
    pub fn due(&self, i: u64) -> Duration {
        Duration::from_nanos(i.saturating_mul(1_000_000_000) / self.rate_rps)
    }

    /// Produces the next arrival of the schedule.
    pub fn next_arrival(&mut self) -> Arrival {
        let due = self.due(self.next);
        self.next += 1;
        (due, self.inner.next_request())
    }

    /// Generates the complete schedule of the first `m` arrivals.
    pub fn schedule(&mut self, m: usize) -> Vec<Arrival> {
        (0..m).map(|_| self.next_arrival()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RepeatedPairs;

    #[test]
    fn arrivals_are_evenly_spaced_at_the_offered_rate() {
        let mut open = OpenLoop::new(RepeatedPairs::new(16, vec![(0, 9), (3, 12), (5, 14), (1, 8)]), 1000);
        let schedule = open.schedule(5);
        let offsets: Vec<u64> = schedule.iter().map(|(d, _)| d.as_micros() as u64).collect();
        assert_eq!(offsets, vec![0, 1000, 2000, 3000, 4000]);
    }

    #[test]
    fn long_schedules_do_not_drift() {
        let open = OpenLoop::new(RepeatedPairs::new(16, vec![(0, 9), (3, 12), (5, 14), (1, 8)]), 3);
        // 3 rps: arrival 3_000_000 is due exactly 1_000_000 s in.
        assert_eq!(open.due(3_000_000), Duration::from_secs(1_000_000));
    }

    #[test]
    fn requests_come_from_the_inner_workload_deterministically() {
        let mut open = OpenLoop::new(RepeatedPairs::new(16, vec![(0, 9), (3, 12), (5, 14), (1, 8)]), 50);
        let mut twin = RepeatedPairs::new(16, vec![(0, 9), (3, 12), (5, 14), (1, 8)]);
        for _ in 0..32 {
            let (_, request) = open.next_arrival();
            assert_eq!(request, twin.next_request());
        }
    }

    #[test]
    #[should_panic(expected = "offered rate")]
    fn zero_rate_is_rejected() {
        let _ = OpenLoop::new(RepeatedPairs::new(16, vec![(0, 9), (3, 12), (5, 14), (1, 8)]), 0);
    }
}
