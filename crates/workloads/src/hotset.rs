//! Temporal-locality workload: a rotating hot community.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::trace::Request;
use crate::Workload;

/// Most requests are exchanged inside a small *hot set* of peers; every
/// `rotation_period` requests the hot set drifts (one member is replaced).
/// This is the workload that exercises the working-set property directly:
/// pairs inside the hot set have working set numbers bounded by the hot-set
/// size, so a self-adjusting structure should serve them in
/// `O(log hot_size)` hops regardless of `n`.
#[derive(Debug)]
pub struct RotatingHotSet {
    n: u64,
    hot: Vec<u64>,
    hot_probability: f64,
    rotation_period: usize,
    served: usize,
    rng: StdRng,
}

impl RotatingHotSet {
    /// Creates the workload: `hot_size` peers form the hot set, a request is
    /// intra-hot-set with probability `hot_probability`, and one hot member
    /// is replaced every `rotation_period` requests.
    ///
    /// # Panics
    ///
    /// Panics if `hot_size < 2`, `hot_size > n`, `rotation_period == 0` or
    /// the probability is outside `[0, 1]`.
    pub fn new(
        n: u64,
        hot_size: usize,
        hot_probability: f64,
        rotation_period: usize,
        seed: u64,
    ) -> Self {
        assert!(hot_size >= 2, "the hot set needs at least two peers");
        assert!((hot_size as u64) <= n, "hot set larger than the network");
        assert!(rotation_period > 0, "rotation period must be positive");
        assert!(
            (0.0..=1.0).contains(&hot_probability),
            "probability must lie in [0, 1]"
        );
        let hot: Vec<u64> = (0..hot_size as u64).collect();
        RotatingHotSet {
            n,
            hot,
            hot_probability,
            rotation_period,
            served: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The current hot set (mostly useful for tests and reporting).
    pub fn hot_set(&self) -> &[u64] {
        &self.hot
    }

    fn rotate(&mut self) {
        // Replace the oldest hot member with a random cold peer.
        let replacement = loop {
            let candidate = self.rng.random_range(0..self.n);
            if !self.hot.contains(&candidate) {
                break candidate;
            }
        };
        self.hot.remove(0);
        self.hot.push(replacement);
    }
}

impl Workload for RotatingHotSet {
    fn peers(&self) -> u64 {
        self.n
    }

    fn next_request(&mut self) -> Request {
        if self.served > 0 && self.served.is_multiple_of(self.rotation_period) {
            self.rotate();
        }
        self.served += 1;
        if self.rng.random_bool(self.hot_probability) || self.n == self.hot.len() as u64 {
            // Intra-hot-set request.
            let i = self.rng.random_range(0..self.hot.len());
            let mut j = self.rng.random_range(0..self.hot.len());
            while j == i {
                j = self.rng.random_range(0..self.hot.len());
            }
            Request::communicate(self.hot[i], self.hot[j])
        } else {
            // Background request involving at least one cold peer.
            let u = self.rng.random_range(0..self.n);
            let mut v = self.rng.random_range(0..self.n);
            while v == u {
                v = self.rng.random_range(0..self.n);
            }
            Request::communicate(u, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_requests_stay_in_the_hot_set() {
        let mut w = RotatingHotSet::new(256, 8, 0.9, 1_000_000, 3);
        let hot: Vec<u64> = w.hot_set().to_vec();
        let trace = w.generate(1000);
        let intra = trace
            .iter()
            .filter(|r| hot.contains(&r.pair().0) && hot.contains(&r.pair().1))
            .count();
        assert!(intra > 800, "only {intra} of 1000 requests were hot");
    }

    #[test]
    fn rotation_changes_the_hot_set() {
        let mut w = RotatingHotSet::new(64, 4, 1.0, 10, 4);
        let before: Vec<u64> = w.hot_set().to_vec();
        let _ = w.generate(100);
        let after: Vec<u64> = w.hot_set().to_vec();
        assert_ne!(before, after);
        assert_eq!(after.len(), 4);
    }

    #[test]
    fn requests_are_always_valid() {
        let mut w = RotatingHotSet::new(32, 4, 0.5, 7, 5);
        for r in w.generate(500) {
            let (u, v) = r.pair();
            assert!(u != v && u < 32 && v < 32);
        }
    }

    #[test]
    #[should_panic(expected = "hot set larger")]
    fn oversized_hot_set_is_rejected() {
        let _ = RotatingHotSet::new(4, 8, 0.5, 1, 0);
    }
}
