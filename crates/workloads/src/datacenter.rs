//! Multi-level locality workload (the VM-migration scenario of §VII).
//!
//! The paper's conclusion motivates DSG with data-center networks where
//! communication has several locality levels: rack, pod (intra-data-center),
//! and global. This workload models that: peers are laid out in racks of
//! `rack_size` peers and pods of `racks_per_pod` racks; each request picks a
//! locality level according to configured probabilities and then a uniform
//! pair within that level.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::trace::Request;
use crate::Workload;

/// The data-center locality workload.
#[derive(Debug)]
pub struct Datacenter {
    n: u64,
    rack_size: u64,
    racks_per_pod: u64,
    intra_rack: f64,
    intra_pod: f64,
    rng: StdRng,
}

impl Datacenter {
    /// Creates the workload. A request is intra-rack with probability
    /// `intra_rack`, intra-pod (but cross-rack) with probability
    /// `intra_pod`, and global otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the sizes are zero, the probabilities are negative or sum
    /// to more than 1, or `n < 2`.
    pub fn new(
        n: u64,
        rack_size: u64,
        racks_per_pod: u64,
        intra_rack: f64,
        intra_pod: f64,
        seed: u64,
    ) -> Self {
        assert!(n >= 2, "a workload needs at least two peers");
        assert!(rack_size >= 2, "racks need at least two peers");
        assert!(racks_per_pod >= 1, "pods need at least one rack");
        assert!(
            intra_rack >= 0.0 && intra_pod >= 0.0 && intra_rack + intra_pod <= 1.0,
            "locality probabilities must be non-negative and sum to at most 1"
        );
        Datacenter {
            n,
            rack_size,
            racks_per_pod,
            intra_rack,
            intra_pod,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A conventional configuration: racks of 8, 4 racks per pod, 70%
    /// intra-rack and 20% intra-pod traffic.
    pub fn conventional(n: u64, seed: u64) -> Self {
        Datacenter::new(n, 8, 4, 0.7, 0.2, seed)
    }

    /// The rack index of a peer.
    pub fn rack_of(&self, peer: u64) -> u64 {
        peer / self.rack_size
    }

    /// The pod index of a peer.
    pub fn pod_of(&self, peer: u64) -> u64 {
        self.rack_of(peer) / self.racks_per_pod
    }

    fn random_in(&mut self, lo: u64, hi: u64, not: Option<u64>) -> u64 {
        loop {
            let candidate = self.rng.random_range(lo..hi);
            if Some(candidate) != not {
                return candidate;
            }
        }
    }
}

impl Workload for Datacenter {
    fn peers(&self) -> u64 {
        self.n
    }

    fn next_request(&mut self) -> Request {
        let u = self.rng.random_range(0..self.n);
        let roll: f64 = self.rng.random();
        let rack = self.rack_of(u);
        let rack_lo = rack * self.rack_size;
        let rack_hi = (rack_lo + self.rack_size).min(self.n);
        let pod = self.pod_of(u);
        let pod_lo = pod * self.racks_per_pod * self.rack_size;
        let pod_hi = (pod_lo + self.racks_per_pod * self.rack_size).min(self.n);

        let v = if roll < self.intra_rack && rack_hi - rack_lo >= 2 {
            self.random_in(rack_lo, rack_hi, Some(u))
        } else if roll < self.intra_rack + self.intra_pod && pod_hi - pod_lo >= 2 {
            self.random_in(pod_lo, pod_hi, Some(u))
        } else {
            self.random_in(0, self.n, Some(u))
        };
        Request::communicate(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_fractions_roughly_match_configuration() {
        let mut w = Datacenter::new(256, 8, 4, 0.7, 0.2, 11);
        let trace = w.generate(4000);
        let probe = Datacenter::new(256, 8, 4, 0.7, 0.2, 11);
        let intra_rack = trace
            .iter()
            .filter(|r| probe.rack_of(r.pair().0) == probe.rack_of(r.pair().1))
            .count() as f64
            / trace.len() as f64;
        let intra_pod = trace
            .iter()
            .filter(|r| probe.pod_of(r.pair().0) == probe.pod_of(r.pair().1))
            .count() as f64
            / trace.len() as f64;
        assert!(intra_rack > 0.6, "intra-rack fraction {intra_rack} too low");
        assert!(intra_pod > intra_rack, "pod traffic includes rack traffic");
    }

    #[test]
    fn hierarchy_indexing_is_consistent() {
        let w = Datacenter::new(128, 8, 4, 0.5, 0.3, 0);
        assert_eq!(w.rack_of(0), 0);
        assert_eq!(w.rack_of(7), 0);
        assert_eq!(w.rack_of(8), 1);
        assert_eq!(w.pod_of(31), 0);
        assert_eq!(w.pod_of(32), 1);
    }

    #[test]
    fn requests_stay_in_range() {
        let mut w = Datacenter::conventional(100, 1);
        for r in w.generate(500) {
            let (u, v) = r.pair();
            assert!(u < 100 && v < 100 && u != v);
        }
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn bad_probabilities_are_rejected() {
        let _ = Datacenter::new(64, 8, 4, 0.8, 0.5, 0);
    }
}
