//! Fixed-pair workloads (the pattern of Figures 2 and 3).

use crate::trace::Request;
use crate::Workload;

/// Replays a fixed set of pairs round-robin. With a single pair this is the
/// best case for self-adjustment (the pair becomes directly linked and every
/// later request costs `O(1)`); with `k` pairs each pair's working set stays
/// bounded by the peers of the `k` pairs.
#[derive(Debug, Clone)]
pub struct RepeatedPairs {
    n: u64,
    pairs: Vec<Request>,
    cursor: usize,
}

impl RepeatedPairs {
    /// Creates a workload replaying `pairs` over peers `0..n` round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or any pair references a peer `≥ n`.
    pub fn new(n: u64, pairs: Vec<(u64, u64)>) -> Self {
        assert!(!pairs.is_empty(), "at least one pair is required");
        let pairs: Vec<Request> = pairs.into_iter().map(Request::from).collect();
        assert!(
            pairs
                .iter()
                .all(|r| r.pair().0 < n && r.pair().1 < n),
            "pairs must reference peers 0..n"
        );
        RepeatedPairs {
            n,
            pairs,
            cursor: 0,
        }
    }

    /// A single hot pair `(u, v)` repeated forever.
    pub fn single(n: u64, u: u64, v: u64) -> Self {
        RepeatedPairs::new(n, vec![(u, v)])
    }

    /// The access pattern of Figure 2(a): `(u, v)`, `(e, a)`, `(a, k)`,
    /// `(k, u)`, `(u, v)`, mapped onto peers `0..5` of an `n`-peer network.
    pub fn figure2(n: u64) -> Self {
        assert!(n >= 5, "the Figure 2 pattern needs at least 5 peers");
        RepeatedPairs::new(n, vec![(0, 1), (2, 3), (3, 4), (4, 0), (0, 1)])
    }

    /// The pairs being replayed.
    pub fn pairs(&self) -> &[Request] {
        &self.pairs
    }
}

impl Workload for RepeatedPairs {
    fn peers(&self) -> u64 {
        self.n
    }

    fn next_request(&mut self) -> Request {
        let request = self.pairs[self.cursor % self.pairs.len()];
        self.cursor += 1;
        request
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pair_repeats() {
        let mut w = RepeatedPairs::single(10, 2, 7);
        let trace = w.generate(5);
        assert!(trace.iter().all(|r| r.pair() == (2, 7)));
    }

    #[test]
    fn round_robin_cycles_through_pairs() {
        let mut w = RepeatedPairs::new(8, vec![(0, 1), (2, 3)]);
        let trace = w.generate(4);
        assert_eq!(trace[0], trace[2]);
        assert_eq!(trace[1], trace[3]);
        assert_ne!(trace[0], trace[1]);
    }

    #[test]
    fn figure2_pattern_has_five_requests_per_cycle() {
        let mut w = RepeatedPairs::figure2(6);
        let trace = w.generate(5);
        assert_eq!(trace[0], Request::communicate(0, 1));
        assert_eq!(trace[4], Request::communicate(0, 1));
    }

    #[test]
    #[should_panic(expected = "peers 0..n")]
    fn out_of_range_pairs_are_rejected() {
        let _ = RepeatedPairs::new(4, vec![(0, 9)]);
    }
}
