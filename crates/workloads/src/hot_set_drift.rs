//! Sliding-window workload: a contiguous hot window drifting over the keys.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::trace::Request;
use crate::Workload;

/// Requests are drawn (mostly) from a contiguous window of `window` peers
/// that slides forward by `stride` keys every `drift_period` requests,
/// wrapping around the key space. With probability `1 - window_probability`
/// a request is instead uniform background noise.
///
/// Unlike [`RotatingHotSet`](crate::RotatingHotSet) — which replaces one
/// member at a time — the whole working set here moves together, so the
/// pair-frequency profile shifts gradually but completely: pairs fall out
/// of favour at the same rate new ones arrive. A frequency sketch without
/// aging keeps the stale window hot forever; this workload exposes that.
#[derive(Debug)]
pub struct HotSetDrift {
    n: u64,
    window: u64,
    stride: u64,
    drift_period: usize,
    window_probability: f64,
    base: u64,
    served: usize,
    rng: StdRng,
}

impl HotSetDrift {
    /// Creates the workload: a window of `window` consecutive peer keys
    /// (mod `n`) starting at 0, sliding by `stride` every `drift_period`
    /// requests; requests land inside the window with probability
    /// `window_probability`.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`, `window > n`, `stride == 0`,
    /// `drift_period == 0` or the probability is outside `[0, 1]`.
    pub fn new(
        n: u64,
        window: u64,
        stride: u64,
        drift_period: usize,
        window_probability: f64,
        seed: u64,
    ) -> Self {
        assert!(window >= 2, "the window needs at least two peers");
        assert!(window <= n, "window larger than the network");
        assert!(stride > 0, "stride must be positive");
        assert!(drift_period > 0, "drift period must be positive");
        assert!(
            (0.0..=1.0).contains(&window_probability),
            "probability must lie in [0, 1]"
        );
        HotSetDrift {
            n,
            window,
            stride,
            drift_period,
            window_probability,
            base: 0,
            served: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The first key of the current window (mostly useful for tests).
    pub fn window_base(&self) -> u64 {
        self.base
    }

    /// Whether the key lies inside the current (wrapping) window.
    pub fn in_window(&self, key: u64) -> bool {
        (key.wrapping_sub(self.base) % self.n) < self.window
    }
}

impl Workload for HotSetDrift {
    fn peers(&self) -> u64 {
        self.n
    }

    fn next_request(&mut self) -> Request {
        if self.served > 0 && self.served.is_multiple_of(self.drift_period) {
            self.base = (self.base + self.stride) % self.n;
        }
        self.served += 1;
        if self.rng.random_bool(self.window_probability) || self.window == self.n {
            let u = (self.base + self.rng.random_range(0..self.window)) % self.n;
            let mut v = (self.base + self.rng.random_range(0..self.window)) % self.n;
            while v == u {
                v = (self.base + self.rng.random_range(0..self.window)) % self.n;
            }
            Request::communicate(u, v)
        } else {
            let u = self.rng.random_range(0..self.n);
            let mut v = self.rng.random_range(0..self.n);
            while v == u {
                v = self.rng.random_range(0..self.n);
            }
            Request::communicate(u, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_concentrate_in_the_window() {
        let mut w = HotSetDrift::new(256, 8, 4, 1_000_000, 0.9, 3);
        let trace = w.generate(1000);
        let inside = trace
            .iter()
            .filter(|r| r.pair().0 < 8 && r.pair().1 < 8)
            .count();
        assert!(inside > 800, "only {inside} of 1000 requests were hot");
    }

    #[test]
    fn window_drifts_and_wraps() {
        let mut w = HotSetDrift::new(64, 4, 8, 10, 1.0, 4);
        assert_eq!(w.window_base(), 0);
        let _ = w.generate(100);
        // 100 requests at stride 8 every 10 requests: 9 drifts, wrapping.
        assert_eq!(w.window_base(), 72 % 64);
        assert!(w.in_window(8) && !w.in_window(20));
    }

    #[test]
    fn traces_are_reproducible_per_seed() {
        let a = HotSetDrift::new(128, 8, 2, 16, 0.8, 11).generate(300);
        let b = HotSetDrift::new(128, 8, 2, 16, 0.8, 11).generate(300);
        let c = HotSetDrift::new(128, 8, 2, 16, 0.8, 12).generate(300);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn requests_are_always_valid() {
        let mut w = HotSetDrift::new(32, 4, 1, 7, 0.5, 5);
        for r in w.generate(500) {
            let (u, v) = r.pair();
            assert!(u != v && u < 32 && v < 32);
        }
    }

    #[test]
    #[should_panic(expected = "window larger")]
    fn oversized_window_is_rejected() {
        let _ = HotSetDrift::new(4, 8, 1, 1, 0.5, 0);
    }
}
