//! Requests and traces.
//!
//! The request type emitted here IS the session request type of the `dsg`
//! crate ([`dsg::Request`]): a generated trace feeds
//! [`DsgSession::submit_batch`](dsg::DsgSession::submit_batch) verbatim,
//! with no conversion layer between trace generation and execution. The
//! generators of this crate only ever produce the
//! [`Request::Communicate`] variant; membership churn (`Join` / `Leave`)
//! and clock control (`Tick`) can be spliced into a trace by the caller.

pub use dsg::Request;

/// A sequence of requests.
pub type Trace = Vec<Request>;

/// Converts a trace into the plain pair representation used by the metrics
/// crate. Non-communication requests contribute nothing.
pub fn as_pairs(trace: &[Request]) -> Vec<(u64, u64)> {
    trace.iter().filter_map(|r| r.endpoints()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_the_session_vocabulary() {
        let r = Request::communicate(9, 2);
        assert_eq!(r.to_string(), "9→2");
        assert_eq!(r.unordered(), Some((2, 9)));
        let r2: Request = (1u64, 5u64).into();
        assert_eq!(r2.pair(), (1, 5));
    }

    #[test]
    fn as_pairs_preserves_order_and_skips_membership() {
        let trace = vec![
            Request::communicate(1, 2),
            Request::Join(9),
            Request::communicate(5, 3),
        ];
        assert_eq!(as_pairs(&trace), vec![(1, 2), (5, 3)]);
    }
}
