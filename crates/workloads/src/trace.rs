//! Requests and traces.

use std::fmt;

/// One communication request: source peer `u` talks to destination peer
/// `v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Request {
    /// The source peer.
    pub u: u64,
    /// The destination peer.
    pub v: u64,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; self-communication is not part of the model.
    pub fn new(u: u64, v: u64) -> Self {
        assert_ne!(u, v, "a request needs two distinct peers");
        Request { u, v }
    }

    /// The request as an unordered pair (smaller key first).
    pub fn unordered(&self) -> (u64, u64) {
        if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.u, self.v)
    }
}

impl From<(u64, u64)> for Request {
    fn from((u, v): (u64, u64)) -> Self {
        Request::new(u, v)
    }
}

/// A sequence of requests.
pub type Trace = Vec<Request>;

/// Converts a trace into the plain pair representation used by the metrics
/// crate.
pub fn as_pairs(trace: &[Request]) -> Vec<(u64, u64)> {
    trace.iter().map(|r| (r.u, r.v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_display_and_normalise() {
        let r = Request::new(9, 2);
        assert_eq!(r.to_string(), "9→2");
        assert_eq!(r.unordered(), (2, 9));
        let r2: Request = (1u64, 5u64).into();
        assert_eq!(r2.unordered(), (1, 5));
    }

    #[test]
    #[should_panic(expected = "two distinct peers")]
    fn self_requests_are_rejected() {
        let _ = Request::new(3, 3);
    }

    #[test]
    fn as_pairs_preserves_order() {
        let trace = vec![Request::new(1, 2), Request::new(5, 3)];
        assert_eq!(as_pairs(&trace), vec![(1, 2), (5, 3)]);
    }
}
