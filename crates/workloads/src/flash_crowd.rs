//! Flash-crowd workload: a uniform stream with a sudden hot burst.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::trace::Request;
use crate::Workload;

/// Uniform background traffic with one *flash crowd*: during the burst
/// window `[burst_start, burst_start + burst_len)`, each request is drawn
/// from a small fixed set of hot pairs with probability `burst_probability`
/// (uniform otherwise). Outside the window the stream is plain uniform
/// random.
///
/// This is the adaptation-policy stress pattern: the frequency sketch sees
/// nothing worth restructuring for, then a handful of pairs suddenly
/// dominate, then the crowd disperses and the counters must age back out.
#[derive(Debug)]
pub struct FlashCrowd {
    n: u64,
    hot_pairs: Vec<(u64, u64)>,
    burst_start: usize,
    burst_len: usize,
    burst_probability: f64,
    served: usize,
    rng: StdRng,
}

impl FlashCrowd {
    /// Creates the workload: `hot_pairs` distinct pairs form the crowd
    /// (chosen deterministically from the seed), the burst covers requests
    /// `[burst_start, burst_start + burst_len)`, and within it a request is
    /// hot with probability `burst_probability`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`, `hot_pairs == 0`, `hot_pairs > n / 2`,
    /// `burst_len == 0` or the probability is outside `[0, 1]`.
    pub fn new(
        n: u64,
        hot_pairs: usize,
        burst_start: usize,
        burst_len: usize,
        burst_probability: f64,
        seed: u64,
    ) -> Self {
        assert!(n >= 4, "a flash crowd needs at least four peers");
        assert!(hot_pairs > 0, "the crowd needs at least one hot pair");
        assert!(
            hot_pairs as u64 <= n / 2,
            "too many hot pairs for the network"
        );
        assert!(burst_len > 0, "burst length must be positive");
        assert!(
            (0.0..=1.0).contains(&burst_probability),
            "probability must lie in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Hot pairs over disjoint peers, so the crowd is `hot_pairs`
        // independent conversations rather than one clique.
        let mut members: Vec<u64> = Vec::with_capacity(hot_pairs * 2);
        while members.len() < hot_pairs * 2 {
            let candidate = rng.random_range(0..n);
            if !members.contains(&candidate) {
                members.push(candidate);
            }
        }
        let hot = members.chunks(2).map(|c| (c[0], c[1])).collect();
        FlashCrowd {
            n,
            hot_pairs: hot,
            burst_start,
            burst_len,
            burst_probability,
            served: 0,
            rng,
        }
    }

    /// The fixed hot-pair set (mostly useful for tests and reporting).
    pub fn hot_pairs(&self) -> &[(u64, u64)] {
        &self.hot_pairs
    }

    /// Whether the next request falls inside the burst window.
    pub fn in_burst(&self) -> bool {
        self.served >= self.burst_start && self.served < self.burst_start + self.burst_len
    }
}

impl Workload for FlashCrowd {
    fn peers(&self) -> u64 {
        self.n
    }

    fn next_request(&mut self) -> Request {
        let hot = self.in_burst() && self.rng.random_bool(self.burst_probability);
        self.served += 1;
        if hot {
            let i = self.rng.random_range(0..self.hot_pairs.len());
            let (u, v) = self.hot_pairs[i];
            Request::communicate(u, v)
        } else {
            let u = self.rng.random_range(0..self.n);
            let mut v = self.rng.random_range(0..self.n);
            while v == u {
                v = self.rng.random_range(0..self.n);
            }
            Request::communicate(u, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_window_is_dominated_by_hot_pairs() {
        let mut w = FlashCrowd::new(256, 4, 200, 400, 0.95, 7);
        let hot: Vec<(u64, u64)> = w.hot_pairs().to_vec();
        let is_hot = |r: &Request| {
            let (u, v) = r.pair();
            hot.iter()
                .any(|&(a, b)| (u, v) == (a, b) || (u, v) == (b, a))
        };
        let trace = w.generate(800);
        let before = trace[..200].iter().filter(|r| is_hot(r)).count();
        let during = trace[200..600].iter().filter(|r| is_hot(r)).count();
        let after = trace[600..].iter().filter(|r| is_hot(r)).count();
        assert!(during > 340, "only {during} of 400 burst requests were hot");
        assert!(before < 40, "{before} pre-burst requests hit hot pairs");
        assert!(after < 40, "{after} post-burst requests hit hot pairs");
    }

    #[test]
    fn traces_are_reproducible_per_seed() {
        let a = FlashCrowd::new(128, 3, 50, 100, 0.9, 11).generate(300);
        let b = FlashCrowd::new(128, 3, 50, 100, 0.9, 11).generate(300);
        let c = FlashCrowd::new(128, 3, 50, 100, 0.9, 12).generate(300);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn requests_are_always_valid() {
        let mut w = FlashCrowd::new(32, 2, 0, 100, 0.5, 5);
        for r in w.generate(500) {
            let (u, v) = r.pair();
            assert!(u != v && u < 32 && v < 32);
        }
    }

    #[test]
    #[should_panic(expected = "too many hot pairs")]
    fn oversized_crowd_is_rejected() {
        let _ = FlashCrowd::new(8, 5, 0, 10, 0.5, 0);
    }
}
