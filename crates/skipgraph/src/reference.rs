//! A naive, index-based reference skip graph.
//!
//! [`ReferenceGraph`] is the representation the repository *used* to build
//! [`SkipGraph`](crate::SkipGraph) around: a
//! `HashMap<Prefix, BTreeMap<Key, NodeId>>` per level, with neighbour
//! queries answered by two B-tree range scans and list queries by
//! collecting a fresh `Vec`. It is retained for two jobs:
//!
//! * **differential testing** — property tests drive the intrusive arena
//!   and this reference with identical operation sequences and require
//!   identical observable behaviour (same ids, same list orders, same
//!   neighbours, same route hop counts);
//! * **benchmarking** — the `route`/`neighbors` microbenchmarks and the
//!   `bench_perf` binary measure the arena's speedup against this
//!   representation.
//!
//! Node ids are assigned with exactly the same arena/free-list discipline
//! as [`SkipGraph`](crate::SkipGraph), so ids obtained from mirrored
//! operation sequences are directly comparable.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::error::SkipGraphError;
use crate::ids::{Key, NodeId};
use crate::mvec::{Bit, MembershipVector, Prefix};
use crate::Result;

#[derive(Debug, Clone)]
struct RefEntry {
    key: Key,
    mvec: MembershipVector,
}

/// The naive index-based skip graph representation (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ReferenceGraph {
    arena: Vec<Option<RefEntry>>,
    free: Vec<u32>,
    by_key: BTreeMap<Key, NodeId>,
    levels: Vec<HashMap<Prefix, BTreeMap<Key, NodeId>>>,
}

impl ReferenceGraph {
    /// Creates an empty reference graph.
    pub fn new() -> Self {
        ReferenceGraph::default()
    }

    /// Builds a reference graph from `(key, membership vector)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if two members share a key.
    pub fn from_members<I>(members: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Key, MembershipVector)>,
    {
        let mut graph = ReferenceGraph::new();
        for (key, mvec) in members {
            graph.insert(key, mvec)?;
        }
        Ok(graph)
    }

    /// Inserts a node, assigning ids with the same discipline as
    /// [`SkipGraph`](crate::SkipGraph).
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] on key collisions.
    pub fn insert(&mut self, key: Key, mvec: MembershipVector) -> Result<NodeId> {
        if self.by_key.contains_key(&key) {
            return Err(SkipGraphError::DuplicateKey(key));
        }
        let entry = RefEntry { key, mvec };
        let id = match self.free.pop() {
            Some(raw) => {
                let id = NodeId::from_raw(raw);
                self.arena[id.raw() as usize] = Some(entry);
                id
            }
            None => {
                let id = NodeId::from_raw(self.arena.len() as u32);
                self.arena.push(Some(entry));
                id
            }
        };
        self.by_key.insert(key, id);
        self.index_node(id);
        Ok(id)
    }

    /// Removes the node with `key`.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownKey`] if absent.
    pub fn remove_key(&mut self, key: Key) -> Result<NodeId> {
        let id = self
            .by_key
            .get(&key)
            .copied()
            .ok_or(SkipGraphError::UnknownKey(key))?;
        self.unindex_node(id);
        self.by_key.remove(&key);
        self.arena[id.raw() as usize] = None;
        self.free.push(id.raw());
        Ok(id)
    }

    /// Replaces membership-vector bits from `from_level` upward, exactly
    /// like [`SkipGraph::set_membership_suffix`](crate::SkipGraph::set_membership_suffix).
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id and
    /// [`SkipGraphError::HeightLimitExceeded`] on overlong vectors.
    pub fn set_membership_suffix<I>(
        &mut self,
        id: NodeId,
        from_level: usize,
        new_bits: I,
    ) -> Result<()>
    where
        I: IntoIterator<Item = Bit>,
    {
        if self.entry(id).is_none() {
            return Err(SkipGraphError::UnknownNode(id));
        }
        self.unindex_node(id);
        let result = {
            let entry = self.arena[id.raw() as usize]
                .as_mut()
                .expect("checked live above");
            entry.mvec.replace_suffix(from_level, new_bits)
        };
        self.index_node(id);
        result
    }

    fn entry(&self, id: NodeId) -> Option<&RefEntry> {
        self.arena.get(id.raw() as usize).and_then(|s| s.as_ref())
    }

    fn index_node(&mut self, id: NodeId) {
        let (key, len, mvec) = {
            let entry = self.entry(id).expect("node is live");
            (entry.key, entry.mvec.len(), entry.mvec)
        };
        for level in 0..=len {
            let prefix = mvec.prefix(level);
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, HashMap::new);
            }
            self.levels[level].entry(prefix).or_default().insert(key, id);
        }
    }

    fn unindex_node(&mut self, id: NodeId) {
        let (key, len, mvec) = {
            let entry = self.entry(id).expect("node is live");
            (entry.key, entry.mvec.len(), entry.mvec)
        };
        for level in 0..=len {
            let prefix = mvec.prefix(level);
            if let Some(map) = self.levels.get_mut(level) {
                if let Some(list) = map.get_mut(&prefix) {
                    list.remove(&key);
                    if list.is_empty() {
                        map.remove(&prefix);
                    }
                }
            }
        }
        while matches!(self.levels.last(), Some(m) if m.is_empty()) {
            self.levels.pop();
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// The id holding `key`.
    pub fn node_by_key(&self, key: Key) -> Option<NodeId> {
        self.by_key.get(&key).copied()
    }

    /// The key of a live node.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn key_of(&self, id: NodeId) -> Result<Key> {
        self.entry(id)
            .map(|e| e.key)
            .ok_or(SkipGraphError::UnknownNode(id))
    }

    /// The membership vector of a live node.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn mvec_of(&self, id: NodeId) -> Result<MembershipVector> {
        self.entry(id)
            .map(|e| e.mvec)
            .ok_or(SkipGraphError::UnknownNode(id))
    }

    /// The largest level index for which any list exists.
    pub fn max_level(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Members of the list at `level` with `prefix`, in ascending key
    /// order (allocates, as the old representation did).
    pub fn list_members(&self, level: usize, prefix: Prefix) -> Vec<NodeId> {
        match self.levels.get(level).and_then(|m| m.get(&prefix)) {
            Some(list) => list.values().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Size of the list `id` belongs to at `level` (O(log n) B-tree walk
    /// plus a hash lookup — the cost the intrusive arena removes).
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn list_size(&self, id: NodeId, level: usize) -> Result<usize> {
        let entry = self.entry(id).ok_or(SkipGraphError::UnknownNode(id))?;
        if level > entry.mvec.len() {
            return Ok(1);
        }
        let prefix = entry.mvec.prefix(level);
        Ok(self
            .levels
            .get(level)
            .and_then(|m| m.get(&prefix))
            .map(|l| l.len())
            .unwrap_or(0))
    }

    /// Left and right neighbours of `id` at `level`, answered with two
    /// B-tree range scans (the representation this crate benchmarked the
    /// intrusive arena against).
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn neighbors(&self, id: NodeId, level: usize) -> Result<(Option<NodeId>, Option<NodeId>)> {
        let entry = self.entry(id).ok_or(SkipGraphError::UnknownNode(id))?;
        if level > entry.mvec.len() {
            return Ok((None, None));
        }
        let prefix = entry.mvec.prefix(level);
        let list = match self.levels.get(level).and_then(|m| m.get(&prefix)) {
            Some(list) => list,
            None => return Ok((None, None)),
        };
        let left = list.range(..entry.key).next_back().map(|(_, id)| *id);
        let right = list
            .range((Bound::Excluded(entry.key), Bound::Unbounded))
            .next()
            .map(|(_, id)| *id);
        Ok((left, right))
    }

    /// Routes between two keys with the standard greedy algorithm, using
    /// this representation's neighbour queries; returns the hop count.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownKey`] for unknown keys and
    /// [`SkipGraphError::InvariantViolated`] if the structure is corrupt.
    pub fn route_hops(&self, from: Key, to: Key) -> Result<usize> {
        let source = self
            .node_by_key(from)
            .ok_or(SkipGraphError::UnknownKey(from))?;
        let destination = self
            .node_by_key(to)
            .ok_or(SkipGraphError::UnknownKey(to))?;
        if source == destination {
            return Ok(0);
        }
        let src_key = self.key_of(source)?;
        let dst_key = self.key_of(destination)?;
        let going_right = dst_key > src_key;
        let mut current = source;
        let mut level = self.mvec_of(source)?.len();
        let mut hops = 0usize;
        loop {
            let cur_key = self.key_of(current)?;
            if cur_key == dst_key {
                break;
            }
            let (left, right) = self.neighbors(current, level)?;
            let candidate = if going_right { right } else { left };
            let advance = match candidate {
                Some(next) => {
                    let next_key = self.key_of(next)?;
                    if (going_right && next_key <= dst_key)
                        || (!going_right && next_key >= dst_key)
                    {
                        Some(next)
                    } else {
                        None
                    }
                }
                None => None,
            };
            match advance {
                Some(next) => {
                    current = next;
                    hops += 1;
                }
                None => {
                    if level == 0 {
                        return Err(SkipGraphError::InvariantViolated(format!(
                            "routing from {src_key} to {dst_key} got stuck at {cur_key} on the base level"
                        )));
                    }
                    level -= 1;
                }
            }
        }
        Ok(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SkipGraph;

    fn paired(members: &[(u64, &str)]) -> (SkipGraph, ReferenceGraph) {
        let arena = SkipGraph::from_members(
            members
                .iter()
                .map(|(k, v)| (Key::new(*k), MembershipVector::parse(v).unwrap())),
        )
        .unwrap();
        let reference = ReferenceGraph::from_members(
            members
                .iter()
                .map(|(k, v)| (Key::new(*k), MembershipVector::parse(v).unwrap())),
        )
        .unwrap();
        (arena, reference)
    }

    #[test]
    fn mirrors_the_arena_on_figure1() {
        let members = [
            (1u64, "00"),
            (7, "10"),
            (10, "00"),
            (13, "01"),
            (18, "11"),
            (23, "10"),
        ];
        let (arena, reference) = paired(&members);
        assert_eq!(arena.len(), reference.len());
        for (key, _) in members {
            let id = arena.node_by_key(Key::new(key)).unwrap();
            assert_eq!(reference.node_by_key(Key::new(key)), Some(id));
            for level in 0..=3 {
                assert_eq!(
                    arena.neighbors(id, level).unwrap(),
                    reference.neighbors(id, level).unwrap(),
                    "neighbours disagree for key {key} at level {level}"
                );
                assert_eq!(
                    arena.list_size(id, level).unwrap(),
                    reference.list_size(id, level).unwrap()
                );
            }
        }
        for (a, _) in members {
            for (b, _) in members {
                assert_eq!(
                    arena.route(Key::new(a), Key::new(b)).unwrap().hops(),
                    reference.route_hops(Key::new(a), Key::new(b)).unwrap()
                );
            }
        }
    }

    #[test]
    fn id_assignment_matches_after_removals() {
        let members = [(1u64, "0"), (2, "1"), (3, "0"), (4, "1")];
        let (mut arena, mut reference) = paired(&members);
        arena.remove_key(Key::new(2)).unwrap();
        reference.remove_key(Key::new(2)).unwrap();
        let a = arena
            .insert(Key::new(9), MembershipVector::parse("01").unwrap())
            .unwrap();
        let r = reference
            .insert(Key::new(9), MembershipVector::parse("01").unwrap())
            .unwrap();
        assert_eq!(a, r, "free-list discipline must match");
    }
}
