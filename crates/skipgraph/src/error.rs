//! Error types for the skip graph substrate.

use std::fmt;

use crate::ids::{Key, NodeId};

/// Errors returned by skip graph construction, mutation and routing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SkipGraphError {
    /// A node with the same key already exists in the graph.
    DuplicateKey(Key),
    /// No node with the given key exists in the graph.
    UnknownKey(Key),
    /// The node id does not refer to a live node of this graph.
    UnknownNode(NodeId),
    /// A membership vector string or bit sequence was malformed.
    InvalidMembershipVector(String),
    /// A membership vector grew past the supported maximum height.
    HeightLimitExceeded {
        /// The maximum number of levels supported.
        limit: usize,
    },
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// A structural invariant of the skip graph was violated; produced by
    /// [`SkipGraph::validate`](crate::SkipGraph::validate).
    InvariantViolated(String),
}

impl fmt::Display for SkipGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipGraphError::DuplicateKey(key) => {
                write!(f, "a node with key {key} already exists")
            }
            SkipGraphError::UnknownKey(key) => write!(f, "no node with key {key} exists"),
            SkipGraphError::UnknownNode(id) => write!(f, "node id {id} is not live in this graph"),
            SkipGraphError::InvalidMembershipVector(msg) => {
                write!(f, "invalid membership vector: {msg}")
            }
            SkipGraphError::HeightLimitExceeded { limit } => {
                write!(f, "membership vector exceeds the supported height of {limit} levels")
            }
            SkipGraphError::EmptyGraph => write!(f, "operation requires a non-empty skip graph"),
            SkipGraphError::InvariantViolated(msg) => {
                write!(f, "skip graph invariant violated: {msg}")
            }
        }
    }
}

impl std::error::Error for SkipGraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = SkipGraphError::DuplicateKey(Key::new(3));
        assert_eq!(err.to_string(), "a node with key 3 already exists");
        let err = SkipGraphError::HeightLimitExceeded { limit: 128 };
        assert!(err.to_string().contains("128"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SkipGraphError>();
    }
}
