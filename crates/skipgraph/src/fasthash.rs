//! A tiny non-cryptographic hasher for the graph's internal index maps.
//!
//! The arena keeps one `Prefix → list` map per level, and every link,
//! lookup and batch-install group touches it; the DSG driver additionally
//! keys per-request scratch sets by `(level, Prefix)`. The std `HashMap`
//! default (SipHash 1-3) is DoS-resistant but costs ~1–2 orders of
//! magnitude more than a multiply–xor mix for these small fixed-size keys,
//! and none of these maps are fed attacker-controlled keys — prefixes and
//! node ids come from the structure itself. This is the FxHash algorithm
//! (as used throughout rustc): per machine word, `h = (rotl(h, 5) ^ w) *
//! SEED`.

use std::hash::{BuildHasher, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// `BuildHasher` for [`FastHasher`]; zero-sized and deterministic, so maps
/// built with it iterate in a stable (though unspecified) order for a given
/// insertion history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastHashState;

impl BuildHasher for FastHashState {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher(0)
    }
}

/// The FxHash word-at-a-time multiply–xor hasher.
#[derive(Debug, Clone, Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn maps_with_the_fast_hasher_behave_like_maps() {
        let mut map: HashMap<(usize, u128), u32, FastHashState> = HashMap::default();
        for i in 0..1000u32 {
            map.insert((i as usize % 7, (i as u128) << 64 | i as u128), i);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(
                map.get(&(i as usize % 7, (i as u128) << 64 | i as u128)),
                Some(&i)
            );
        }
    }

    #[test]
    fn hashes_spread_across_buckets() {
        // Sanity: sequential u128 keys (like packed prefixes) must not all
        // collide in the low bits the hash map indexes with.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u128 {
            let mut h = FastHashState.build_hasher();
            h.write_u128(i);
            low_bits.insert(h.finish() & 0x3f);
        }
        assert!(low_bits.len() > 16, "only {} distinct buckets", low_bits.len());
    }
}
