//! A tiny non-cryptographic hasher for the graph's internal index maps.
//!
//! The arena keeps one `Prefix → list` map per level, and every link,
//! lookup and batch-install group touches it; the DSG driver additionally
//! keys per-request scratch sets by `(level, Prefix)`. The std `HashMap`
//! default (SipHash 1-3) is DoS-resistant but costs ~1–2 orders of
//! magnitude more than a multiply–xor mix for these small fixed-size keys,
//! and none of these maps are fed attacker-controlled keys — prefixes and
//! node ids come from the structure itself. This is the FxHash algorithm
//! (as used throughout rustc): per machine word, `h = (rotl(h, 5) ^ w) *
//! SEED`.

use std::hash::{BuildHasher, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// `BuildHasher` for [`FastHasher`]; zero-sized and deterministic, so maps
/// built with it iterate in a stable (though unspecified) order for a given
/// insertion history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastHashState;

impl BuildHasher for FastHashState {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher(0)
    }
}

/// The FxHash word-at-a-time multiply–xor hasher.
#[derive(Debug, Clone, Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// [`FastHashState`] plus a finish-time bit-mix (a splitmix64-style
/// finaliser), for maps whose keys share a large power-of-two stride.
///
/// The plain FxHash `finish` returns `(… ^ word) * SEED` directly, so the
/// low `k` bits of the hash are the low `k` bits of `word * SEED` — and a
/// key that is a multiple of `2^k` yields a hash that is too. That is
/// exactly the layout of this repository's node *keys*: application keys
/// are spaced by `KEY_SPACING = 2^20` so dummy keys always fit between
/// them, which would collapse every peer key into a single bucket chain of
/// the swiss-table (its bucket index is the hash's low bits) and turn O(1)
/// occupancy probes into O(n) chain walks. The finaliser folds the high
/// bits down, restoring uniform bucket spread for ~3 extra ALU ops per
/// lookup. Prefix/NodeId-keyed maps keep the cheaper [`FastHashState`]:
/// their keys are dense small integers with entropy in the low bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyHashState;

impl BuildHasher for KeyHashState {
    type Hasher = KeyHasher;

    fn build_hasher(&self) -> KeyHasher {
        KeyHasher(FastHasher(0))
    }
}

/// The hasher of [`KeyHashState`]: FxHash mixing with a finalising
/// xor-shift-multiply fold.
#[derive(Debug, Clone, Default)]
pub struct KeyHasher(FastHasher);

impl Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut z = self.0.finish();
        z ^= z >> 32;
        z = z.wrapping_mul(0xd6e8_feb8_6659_fd93);
        z ^= z >> 32;
        z
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.0.write_u8(i);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.0.write_u16(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.0.write_u32(i);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0.write_u64(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.0.write_u128(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.0.write_usize(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn maps_with_the_fast_hasher_behave_like_maps() {
        let mut map: HashMap<(usize, u128), u32, FastHashState> = HashMap::default();
        for i in 0..1000u32 {
            map.insert((i as usize % 7, (i as u128) << 64 | i as u128), i);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(
                map.get(&(i as usize % 7, (i as u128) << 64 | i as u128)),
                Some(&i)
            );
        }
    }

    #[test]
    fn strided_keys_spread_across_buckets_with_the_finaliser() {
        // Keys spaced by 2^20 (the repository's KEY_SPACING): the plain
        // FxHash puts them all in low-bits bucket 0; the finalised hasher
        // must spread them.
        let mut plain = std::collections::HashSet::new();
        let mut mixed = std::collections::HashSet::new();
        for i in 1..=64u64 {
            let key = i << 20;
            let mut h = FastHashState.build_hasher();
            h.write_u64(key);
            plain.insert(h.finish() & 0xfff);
            let mut h = KeyHashState.build_hasher();
            h.write_u64(key);
            mixed.insert(h.finish() & 0xfff);
        }
        assert_eq!(plain.len(), 1, "plain FxHash collapses strided keys");
        assert!(mixed.len() > 32, "only {} distinct buckets", mixed.len());
    }

    #[test]
    fn hashes_spread_across_buckets() {
        // Sanity: sequential u128 keys (like packed prefixes) must not all
        // collide in the low bits the hash map indexes with.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u128 {
            let mut h = FastHashState.build_hasher();
            h.write_u128(i);
            low_bits.insert(h.finish() & 0x3f);
        }
        assert!(low_bits.len() > 16, "only {} distinct buckets", low_bits.len());
    }
}
