//! # dsg-skipgraph — skip graph substrate
//!
//! This crate implements the *standard* skip graph data structure of
//! Aspnes & Shah ("Skip Graphs", SODA 2003) as the substrate on which the
//! self-adjusting algorithm of Huq & Ghosh ("Locally Self-Adjusting Skip
//! Graphs", ICDCS 2017) operates.
//!
//! A skip graph positions nodes in ascending key order in multiple levels.
//! Level 0 is a doubly linked list containing every node. Every linked list
//! with at least two nodes at level `i` splits into two distinct lists at
//! level `i + 1` according to the `i`-th bit of each node's *membership
//! vector*, and the construction recurses until every node is the only member
//! of its list.
//!
//! The crate provides:
//!
//! * [`MembershipVector`] and [`Prefix`] — the per-node bit strings that
//!   define the level structure (`mvec` module).
//! * [`SkipGraph`] — the structure itself, stored as an **intrusive
//!   linked-list arena**: each node slot carries per-level
//!   `{prev, next, list}` link records, so
//!   [`neighbors`](SkipGraph::neighbors) is two pointer reads and
//!   [`list_size`](SkipGraph::list_size) reads a cached length — O(1),
//!   with no hashing, tree walks or allocation on the hot paths. List
//!   contents are walked with borrowing iterators
//!   ([`list_iter`](SkipGraph::list_iter),
//!   [`list_of_iter`](SkipGraph::list_of_iter),
//!   [`lists_at_level_iter`](SkipGraph::lists_at_level_iter)); see the
//!   `graph` module docs for the representation.
//! * [`reference::ReferenceGraph`] — the naive index-based twin
//!   (`HashMap<Prefix, BTreeMap<Key, NodeId>>` per level), retained for
//!   differential testing and as the baseline the perf suite measures the
//!   arena's speedup against (`reference` module).
//! * [`route`](SkipGraph::route) — the standard skip graph routing algorithm
//!   (Appendix B of the paper) with hop accounting (`routing` module).
//! * [`TreeView`] — the binary-tree-of-linked-lists view used throughout the
//!   paper (Figure 1) for reasoning about subgraphs (`tree` module).
//! * a-balance checking (`balance` module) — the structural property the
//!   self-adjusting algorithm must preserve.
//! * [`BalancedSkipList`] — the probabilistic, support-balanced skip list
//!   that the paper's AMF algorithm (Section V) constructs over a linked
//!   list (`skiplist` module).
//! * join/leave maintenance (`maintenance` module).
//!
//! # Example
//!
//! ```rust
//! # use dsg_skipgraph::{SkipGraph, Key};
//! # use rand::SeedableRng;
//! # fn main() -> Result<(), dsg_skipgraph::SkipGraphError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let keys: Vec<Key> = (0..64).map(Key::new).collect();
//! let graph = SkipGraph::random(keys.iter().copied(), &mut rng)?;
//! let route = graph.route(Key::new(3), Key::new(60))?;
//! assert!(route.hops() <= 3 * 64usize.ilog2() as usize);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod balance;
pub mod crc32;
pub mod error;
pub mod failpoint;
pub mod fasthash;
pub mod fixtures;
pub mod graph;
pub mod ids;
pub mod maintenance;
pub mod mvec;
pub mod reference;
pub mod routing;
pub mod skiplist;
mod smallvec;
pub mod tree;

pub use balance::{BalanceReport, BalanceViolation};
pub use crc32::{crc32, Crc32};
pub use error::SkipGraphError;
pub use fasthash::{FastHashState, KeyHashState};
pub use graph::{ListIter, ListRef, MembershipUpdate, NodeEntry, SkipGraph};
pub use ids::{Key, NodeId};
pub use maintenance::{JoinOutcome, LeaveOutcome};
pub use mvec::{Bit, MembershipVector, Prefix};
pub use routing::{RouteHop, RouteResult};
pub use skiplist::BalancedSkipList;
pub use tree::{TreeNode, TreeView};

/// Convenience result alias used across the crate.
pub type Result<T, E = SkipGraphError> = std::result::Result<T, E>;
