//! Standard skip graph routing (Appendix B of the paper).
//!
//! Routing starts at the *top level* of the source node and traverses the
//! structure greedily: while moving toward the destination key at the
//! current level would not overshoot it, follow the level's linked list;
//! otherwise drop one level and continue. Skip graphs guarantee `O(log n)`
//! hops between any pair of nodes.

use crate::error::SkipGraphError;
use crate::graph::SkipGraph;
use crate::ids::{Key, NodeId};
use crate::Result;

/// One hop of a route: the node visited and the level at which the hop was
/// taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteHop {
    /// The node reached by this hop.
    pub node: NodeId,
    /// The level of the linked list the hop traversed (or the level at which
    /// the search was positioned when reaching the node).
    pub level: usize,
}

/// The result of routing a request through the skip graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteResult {
    source: NodeId,
    destination: NodeId,
    path: Vec<RouteHop>,
}

impl RouteResult {
    /// The source node of the request.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The destination node of the request.
    pub fn destination(&self) -> NodeId {
        self.destination
    }

    /// The full path, starting at the source and ending at the destination.
    pub fn path(&self) -> &[RouteHop] {
        &self.path
    }

    /// Number of hops (edges traversed). A request from a node to itself has
    /// zero hops.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The paper's distance `d_S(σ)`: the number of **intermediate** nodes
    /// on the communication path from source to destination.
    pub fn intermediate_nodes(&self) -> usize {
        self.path.len().saturating_sub(2)
    }
}

impl SkipGraph {
    /// Routes from the node holding `from` to the node holding `to` using
    /// the standard skip graph routing algorithm, returning the path taken.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownKey`] if either key is not present.
    pub fn route(&self, from: Key, to: Key) -> Result<RouteResult> {
        let source = self
            .node_by_key(from)
            .ok_or(SkipGraphError::UnknownKey(from))?;
        let destination = self
            .node_by_key(to)
            .ok_or(SkipGraphError::UnknownKey(to))?;
        self.route_ids(source, destination)
    }

    /// Routes between two nodes identified by id. See [`SkipGraph::route`].
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] if either id is dead.
    pub fn route_ids(&self, source: NodeId, destination: NodeId) -> Result<RouteResult> {
        let src_key = self.key_of(source)?;
        let dst_key = self.key_of(destination)?;
        let mut path = vec![RouteHop {
            node: source,
            level: self.mvec_of(source)?.len(),
        }];
        if source == destination {
            return Ok(RouteResult {
                source,
                destination,
                path,
            });
        }
        let going_right = dst_key > src_key;
        let mut current = source;
        let mut level = self.mvec_of(source)?.len();
        loop {
            let cur_key = self.key_of(current)?;
            if cur_key == dst_key {
                break;
            }
            let (left, right) = self.neighbors(current, level)?;
            let candidate = if going_right { right } else { left };
            let advance = match candidate {
                Some(next) => {
                    let next_key = self.key_of(next)?;
                    // Move along the current level only while we do not
                    // overshoot the destination.
                    if (going_right && next_key <= dst_key)
                        || (!going_right && next_key >= dst_key)
                    {
                        Some(next)
                    } else {
                        None
                    }
                }
                None => None,
            };
            match advance {
                Some(next) => {
                    current = next;
                    path.push(RouteHop {
                        node: next,
                        level,
                    });
                }
                None => {
                    if level == 0 {
                        // At the base level the destination is always
                        // reachable without overshooting; reaching this
                        // branch means the structure is corrupt.
                        return Err(SkipGraphError::InvariantViolated(format!(
                            "routing from {src_key} to {dst_key} got stuck at {cur_key} on the base level"
                        )));
                    }
                    level -= 1;
                }
            }
        }
        Ok(RouteResult {
            source,
            destination,
            path,
        })
    }

    /// The routing distance `d_S(u, v)` used throughout the paper: the
    /// number of intermediate nodes on the standard routing path between the
    /// nodes holding keys `from` and `to`.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownKey`] if either key is not present.
    pub fn distance(&self, from: Key, to: Key) -> Result<usize> {
        Ok(self.route(from, to)?.intermediate_nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::ids::Key;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn route_to_self_has_zero_hops() {
        let g = fixtures::figure1();
        let r = g.route(Key::new(13), Key::new(13)).unwrap();
        assert_eq!(r.hops(), 0);
        assert_eq!(r.intermediate_nodes(), 0);
        assert_eq!(r.source(), r.destination());
    }

    #[test]
    fn route_between_adjacent_keys_is_single_hop() {
        let g = fixtures::figure1();
        let r = g.route(Key::new(1), Key::new(7)).unwrap();
        assert!(r.hops() >= 1);
        assert_eq!(
            g.key_of(r.destination()).unwrap(),
            Key::new(7),
            "route must end at the destination"
        );
        assert_eq!(r.intermediate_nodes(), r.hops() - 1);
    }

    #[test]
    fn routes_are_monotone_toward_the_destination() {
        let g = fixtures::figure1();
        let r = g.route(Key::new(1), Key::new(23)).unwrap();
        let keys: Vec<u64> = r
            .path()
            .iter()
            .map(|h| g.key_of(h.node).unwrap().value())
            .collect();
        for pair in keys.windows(2) {
            assert!(pair[1] > pair[0], "rightward route must be monotone: {keys:?}");
        }
        assert_eq!(*keys.last().unwrap(), 23);
    }

    #[test]
    fn leftward_routes_work_symmetrically() {
        let g = fixtures::figure1();
        let r = g.route(Key::new(23), Key::new(1)).unwrap();
        let keys: Vec<u64> = r
            .path()
            .iter()
            .map(|h| g.key_of(h.node).unwrap().value())
            .collect();
        for pair in keys.windows(2) {
            assert!(pair[1] < pair[0], "leftward route must be monotone: {keys:?}");
        }
        assert_eq!(*keys.last().unwrap(), 1);
    }

    #[test]
    fn all_pairs_reachable_in_random_graph_within_log_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 128u64;
        let g = crate::SkipGraph::random((0..n).map(Key::new), &mut rng).unwrap();
        let log_n = (n as f64).log2();
        let mut worst = 0usize;
        for a in (0..n).step_by(7) {
            for b in (0..n).step_by(13) {
                let r = g.route(Key::new(a), Key::new(b)).unwrap();
                worst = worst.max(r.hops());
            }
        }
        // Standard skip graph routing takes O(log n) hops w.h.p.; allow a
        // generous constant factor for the randomised structure.
        assert!(
            (worst as f64) <= 6.0 * log_n,
            "worst-case hops {worst} exceeds 6·log2(n) = {:.1}",
            6.0 * log_n
        );
    }

    #[test]
    fn routing_levels_never_increase_along_the_path() {
        let g = fixtures::figure1();
        let r = g.route(Key::new(1), Key::new(18)).unwrap();
        let levels: Vec<usize> = r.path().iter().map(|h| h.level).collect();
        for pair in levels.windows(2) {
            assert!(pair[1] <= pair[0], "levels must be non-increasing: {levels:?}");
        }
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let g = fixtures::figure1();
        assert!(matches!(
            g.route(Key::new(1), Key::new(999)),
            Err(SkipGraphError::UnknownKey(_))
        ));
        assert!(matches!(
            g.route(Key::new(999), Key::new(1)),
            Err(SkipGraphError::UnknownKey(_))
        ));
    }
}
