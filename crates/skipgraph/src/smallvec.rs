//! A minimal inline-first vector for per-node level links.
//!
//! Skip graph nodes carry one `{prev, next, list}` link record per level,
//! and the expected number of levels is `O(log n)` — small enough that the
//! links of almost every node fit inline in its arena slot, keeping
//! neighbour reads free of pointer chasing. [`SmallVec`] stores the first
//! `N` elements inline and spills the (rare) remainder to a heap `Vec`.
//!
//! The crate forbids `unsafe`, so elements are required to be
//! `Copy + Default` (the inline buffer is always fully initialised); link
//! records satisfy both trivially.

/// An inline-first vector: the first `N` elements live inside the value,
/// elements past `N` spill to the heap.
#[derive(Debug, Clone)]
pub(crate) struct SmallVec<T, const N: usize> {
    inline: [T; N],
    spill: Vec<T>,
    len: u32,
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec {
            inline: [T::default(); N],
            spill: Vec::new(),
            len: 0,
        }
    }
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Number of live elements.
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns the element at `index`, if in bounds.
    pub(crate) fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len() {
            None
        } else if index < N {
            Some(&self.inline[index])
        } else {
            self.spill.get(index - N)
        }
    }

    /// Mutable access to the element at `index`, if in bounds.
    pub(crate) fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if index >= self.len() {
            None
        } else if index < N {
            Some(&mut self.inline[index])
        } else {
            self.spill.get_mut(index - N)
        }
    }

    /// Appends an element.
    pub(crate) fn push(&mut self, value: T) {
        let idx = self.len();
        if idx < N {
            self.inline[idx] = value;
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Removes every element.
    pub(crate) fn clear(&mut self) {
        self.spill.clear();
        self.len = 0;
    }

    /// Shortens the vector to `len` elements; a no-op if it is already
    /// shorter.
    pub(crate) fn truncate(&mut self, len: usize) {
        if len >= self.len() {
            return;
        }
        self.spill.truncate(len.saturating_sub(N));
        self.len = len as u32;
    }

    /// Iterates over the live elements.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.len().min(N)]
            .iter()
            .chain(self.spill.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_across_the_spill_boundary() {
        let mut v: SmallVec<u32, 4> = SmallVec::default();
        for i in 0..10u32 {
            v.push(i * 3);
        }
        assert_eq!(v.len(), 10);
        for i in 0..10usize {
            assert_eq!(v.get(i), Some(&(i as u32 * 3)));
        }
        assert_eq!(v.get(10), None);
        *v.get_mut(2).unwrap() = 99;
        *v.get_mut(7).unwrap() = 77;
        assert_eq!(v.get(2), Some(&99));
        assert_eq!(v.get(7), Some(&77));
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[2], 99);
        assert_eq!(collected[7], 77);
    }

    #[test]
    fn truncate_across_the_spill_boundary() {
        let mut v: SmallVec<u32, 2> = SmallVec::default();
        for i in 0..6u32 {
            v.push(i);
        }
        v.truncate(9);
        assert_eq!(v.len(), 6);
        v.truncate(4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(3), Some(&3));
        assert_eq!(v.get(4), None);
        v.truncate(1);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(0), Some(&0));
        v.push(9);
        assert_eq!(v.get(1), Some(&9));
        v.truncate(0);
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn clear_resets_and_allows_reuse() {
        let mut v: SmallVec<u8, 2> = SmallVec::default();
        for i in 0..5 {
            v.push(i);
        }
        v.clear();
        assert_eq!(v.len(), 0);
        assert_eq!(v.get(0), None);
        v.push(42);
        assert_eq!(v.get(0), Some(&42));
        assert_eq!(v.len(), 1);
    }
}
