//! The a-balance property (paper §III) and its checker.
//!
//! > *A skip graph satisfies the a-balance property if there exists a
//! > positive integer `a` such that among any `a + 1` consecutive nodes in
//! > any linked list `l ∈ L_i`, at most `a` nodes can be in a single linked
//! > list in `L_{i+1}`.*
//!
//! Equivalently: in no list may `a + 1` consecutive members all move to the
//! same sublist at the next level. The property guarantees that the search
//! path between any pair of nodes has length at most `a · log n`, and the
//! self-adjusting algorithm must re-establish it (by inserting dummy nodes,
//! §IV-F) after every transformation.

use crate::graph::{NodeEntry, SkipGraph};
use crate::ids::{Key, NodeId};
use crate::mvec::{Bit, Prefix};

/// A single violation of the a-balance property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceViolation {
    /// Level of the list in which the over-long run was found.
    pub level: usize,
    /// Prefix identifying the list.
    pub prefix: Prefix,
    /// The sublist bit shared by the offending run.
    pub bit: Bit,
    /// Length of the run of consecutive members moving to the same sublist.
    pub run_length: usize,
    /// Key of the first member of the run.
    pub start_key: Key,
    /// Id of the first member of the run, so a repair can walk the run
    /// directly instead of re-scanning the list for `start_key`.
    pub start: NodeId,
}

/// Summary of an a-balance check over a whole skip graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BalanceReport {
    /// The balance parameter the graph was checked against.
    pub a: usize,
    /// All violations found (empty when the property holds).
    pub violations: Vec<BalanceViolation>,
    /// The longest same-sublist run observed anywhere in the graph.
    pub max_run: usize,
    /// Number of lists (with at least two members) inspected.
    pub lists_checked: usize,
}

impl BalanceReport {
    /// Returns `true` if the graph satisfies the a-balance property.
    pub fn is_balanced(&self) -> bool {
        self.violations.is_empty()
    }
}

impl SkipGraph {
    /// Checks the a-balance property for the given balance parameter `a`,
    /// reporting every maximal run of `a + 1` or more consecutive list
    /// members that share the next-level sublist.
    ///
    /// Members that do not split further (their membership vector ends at
    /// the list's level) terminate any run, since they move to no sublist.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`; the property is defined for positive `a`.
    pub fn check_balance(&self, a: usize) -> BalanceReport {
        assert!(a > 0, "the a-balance property requires a positive a");
        let mut report = BalanceReport {
            a,
            ..BalanceReport::default()
        };
        // Allocation-free sweep straight over the list arena: no per-level
        // hash-map iteration, just the live list descriptors in slab order.
        for (level, prefix, head, len) in self.all_lists_iter() {
            if len < 2 {
                continue;
            }
            report.lists_checked += 1;
            let max_run = self.scan_list_runs(
                a,
                level,
                prefix,
                head,
                &mut |_, _| false,
                &mut report.violations,
            );
            report.max_run = report.max_run.max(max_run);
        }
        report
    }

    /// Appends the a-balance violations of the single list identified by
    /// `(level, prefix)` to `out`. A no-op if no such list exists. This is
    /// the building block of the *incremental* repair: after a differential
    /// transformation only the lists that actually changed need re-checking,
    /// so the repair sweeps a worklist of lists instead of the whole graph.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn list_balance_violations(
        &self,
        a: usize,
        level: usize,
        prefix: Prefix,
        out: &mut Vec<BalanceViolation>,
    ) {
        self.list_balance_violations_filtered(a, level, prefix, |_| false, out);
    }

    /// [`Self::list_balance_violations`] with members for which `skip`
    /// returns `true` treated as absent: a skipped member neither breaks
    /// nor extends a run — runs span it as if it had already been spliced
    /// out. The dummy-reconciliation pass uses this to plan repairs against
    /// the graph *as if* the standing dummies of the rebuilt lists were
    /// destroyed, without actually unlinking them.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn list_balance_violations_filtered<F: Fn(NodeId) -> bool>(
        &self,
        a: usize,
        level: usize,
        prefix: Prefix,
        skip: F,
        out: &mut Vec<BalanceViolation>,
    ) {
        assert!(a > 0, "the a-balance property requires a positive a");
        let Some((head, len)) = self.list_head(level, prefix) else {
            return;
        };
        // A list of at most `a` members cannot hold a run longer than `a`:
        // skip the walk entirely (the worklist of an incremental repair is
        // dominated by small deep lists).
        if len <= a {
            return;
        }
        self.scan_list_runs(a, level, prefix, head, &mut |id, _| skip(id), out);
    }

    /// The fused collect + detect walk of the dummy reconciliation: one
    /// pass over the list that appends every dummy member to `dummies` and
    /// reports the a-balance violations of the list *as if those dummies
    /// were absent*. In a list rebuilt by the install, the differential GC
    /// inventories (or destroys) every standing dummy, so skipping them all
    /// is exactly the filtered scan against the full inventory — without a
    /// second walk to gather it.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn list_balance_violations_collecting_dummies(
        &self,
        a: usize,
        level: usize,
        prefix: Prefix,
        dummies: &mut Vec<NodeId>,
        out: &mut Vec<BalanceViolation>,
    ) {
        assert!(a > 0, "the a-balance property requires a positive a");
        let Some((head, len, dummy_count)) = self.list_head_with_dummies(level, prefix) else {
            return;
        };
        // With nothing to inventory, this is a plain scan — which a list of
        // at most `a` members (no run can exceed `a`) skips outright; the
        // worklist is dominated by small dummy-free deep lists.
        if dummy_count == 0 && len <= a {
            return;
        }
        self.scan_list_runs(
            a,
            level,
            prefix,
            head,
            &mut |id, entry: &NodeEntry| {
                if entry.is_dummy() {
                    dummies.push(id);
                    true
                } else {
                    false
                }
            },
            out,
        );
    }

    /// Examines the maximal same-sublist run containing `id` in its list at
    /// `level`, returning it as a violation if it is longer than `a` (or
    /// `None` if the run is fine, the node stops at this level, or the id
    /// is dead).
    ///
    /// This is the *targeted* form of [`Self::list_balance_violations`]:
    /// inserting a node can only lengthen the runs it lands in, so a repair
    /// cascade needs to look exactly at the runs around each inserted node
    /// — O(run length) — rather than rescan whole lists.
    pub fn run_violation_at(
        &self,
        a: usize,
        id: NodeId,
        level: usize,
    ) -> Option<BalanceViolation> {
        self.run_violation_at_filtered(a, id, level, |_| false)
    }

    /// [`Self::run_violation_at`] with members for which `skip` returns
    /// `true` treated as absent: the run walk steps over them in both
    /// directions without counting them or letting them terminate the run.
    /// `id` itself must not be skipped.
    pub fn run_violation_at_filtered<F: Fn(NodeId) -> bool>(
        &self,
        a: usize,
        id: NodeId,
        level: usize,
        skip: F,
    ) -> Option<BalanceViolation> {
        assert!(a > 0, "the a-balance property requires a positive a");
        let entry = self.node(id)?;
        debug_assert!(!skip(id), "the run anchor must not be skipped");
        // A list of at most `a` members cannot hold a run longer than `a`:
        // the O(1) cached length spares the walk — repair cascades probe
        // every placed dummy at every level, and most of those levels are
        // tiny deep lists.
        if self.list_size(id, level).ok()? <= a {
            return None;
        }
        let bit = entry.mvec().bit(level + 1)?;
        let same_bit = |candidate: NodeId| {
            self.node(candidate)
                .expect("list member is live")
                .mvec()
                .bit(level + 1)
                == Some(bit)
        };
        let mut start = id;
        let mut run_length = 1usize;
        let (mut left, mut right) = self.neighbors(id, level).ok()?;
        while let Some(candidate) = left {
            left = self.neighbors(candidate, level).ok()?.0;
            if skip(candidate) {
                continue;
            }
            if !same_bit(candidate) {
                break;
            }
            start = candidate;
            run_length += 1;
        }
        while let Some(candidate) = right {
            right = self.neighbors(candidate, level).ok()?.1;
            if skip(candidate) {
                continue;
            }
            if !same_bit(candidate) {
                break;
            }
            run_length += 1;
        }
        if run_length <= a {
            return None;
        }
        Some(BalanceViolation {
            level,
            prefix: entry.mvec().prefix(level),
            bit,
            run_length,
            start_key: self.node(start).expect("run member is live").key(),
            start,
        })
    }

    /// Scans one list (walked from `head`) for runs of consecutive members
    /// sharing the next-level sublist, appending every run longer than `a`
    /// to `out`. Members for which `skip` returns `true` are invisible to
    /// the scan (runs span them); `skip` receives the member's entry so a
    /// collecting caller can inspect it without a second arena read.
    /// Returns the longest run observed. One fused arena read per member —
    /// this sweep runs over the whole graph in the balance report, so its
    /// constant factor matters.
    fn scan_list_runs<F: FnMut(NodeId, &NodeEntry) -> bool>(
        &self,
        a: usize,
        level: usize,
        prefix: Prefix,
        head: NodeId,
        skip: &mut F,
        out: &mut Vec<BalanceViolation>,
    ) -> usize {
        let mut max_run = 0usize;
        let mut run_bit: Option<Bit> = None;
        let mut run_len = 0usize;
        let mut run_start: Option<(Key, NodeId)> = None;
        let mut flush =
            |bit: Option<Bit>, len: usize, start: Option<(Key, NodeId)>, max_run: &mut usize| {
                if let (Some(bit), Some((start_key, start))) = (bit, start) {
                    *max_run = (*max_run).max(len);
                    if len > a {
                        out.push(BalanceViolation {
                            level,
                            prefix,
                            bit,
                            run_length: len,
                            start_key,
                            start,
                        });
                    }
                }
            };
        let mut cursor = Some(head);
        while let Some(id) = cursor {
            let (entry, next) = self.entry_and_next(id, level);
            cursor = next;
            if skip(id, entry) {
                continue;
            }
            let next_bit = entry.mvec().bit(level + 1);
            match next_bit {
                Some(bit) if Some(bit) == run_bit => {
                    run_len += 1;
                }
                Some(bit) => {
                    flush(run_bit, run_len, run_start, &mut max_run);
                    run_bit = Some(bit);
                    run_len = 1;
                    run_start = Some((entry.key(), id));
                }
                None => {
                    flush(run_bit, run_len, run_start, &mut max_run);
                    run_bit = None;
                    run_len = 0;
                    run_start = None;
                }
            }
        }
        flush(run_bit, run_len, run_start, &mut max_run);
        max_run
    }

    /// Convenience wrapper: `true` iff the graph satisfies the a-balance
    /// property for parameter `a`.
    pub fn is_a_balanced(&self, a: usize) -> bool {
        self.check_balance(a).is_balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::ids::Key;
    use crate::mvec::MembershipVector;

    #[test]
    fn figure1_is_2_balanced() {
        let g = fixtures::figure1();
        let report = g.check_balance(2);
        assert!(report.is_balanced(), "violations: {:?}", report.violations);
        assert!(report.lists_checked >= 3);
    }

    #[test]
    fn perfectly_balanced_graph_is_1_balanced_only_for_alternating_bits() {
        // perfectly_balanced assigns bit i of the rank, so at level 1 the
        // bits alternate 0,1,0,1,… and no two consecutive nodes share a
        // sublist: it is 1-balanced at level 1 but higher levels also
        // alternate within each list.
        let g = fixtures::perfectly_balanced(16);
        assert!(g.is_a_balanced(1));
        assert!(g.is_a_balanced(2));
    }

    #[test]
    fn long_same_bit_run_is_reported() {
        // 6 nodes that all pick the 0-sublist at level 1 except the last.
        let g = SkipGraph::from_members((0..6u64).map(|k| {
            let v = if k < 5 { "0" } else { "1" };
            (Key::new(k), MembershipVector::parse(v).unwrap())
        }))
        .unwrap();
        let report = g.check_balance(3);
        assert!(!report.is_balanced());
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.level, 0);
        assert_eq!(v.run_length, 5);
        assert_eq!(v.bit, Bit::Zero);
        assert_eq!(v.start_key, Key::new(0));
        // With a = 5 the same run is tolerated.
        assert!(g.is_a_balanced(5));
    }

    #[test]
    fn nodes_that_stop_splitting_break_runs() {
        // Keys 0,1 go to sublist 0, key 2 has an empty vector (stops), keys
        // 3,4 go to sublist 0 again: the runs are 2 and 2, not 4.
        let vectors = ["0", "0", "", "0", "0"];
        let g = SkipGraph::from_members(
            vectors
                .iter()
                .enumerate()
                .map(|(k, v)| (Key::new(k as u64), MembershipVector::parse(v).unwrap())),
        )
        .unwrap();
        let report = g.check_balance(2);
        assert!(report.is_balanced(), "violations: {:?}", report.violations);
        assert_eq!(report.max_run, 2);
    }

    #[test]
    #[should_panic(expected = "positive a")]
    fn zero_a_is_rejected() {
        let g = fixtures::figure1();
        let _ = g.check_balance(0);
    }

    #[test]
    fn random_graphs_have_logarithmic_runs() {
        // Random membership vectors do not guarantee a-balance for a fixed
        // small a, but the longest same-sublist run is O(log n) w.h.p.
        let g = fixtures::uniform_random(256, 17);
        let report = g.check_balance(2);
        assert!(report.max_run <= 3 * 8, "max run {} too long", report.max_run);
        // The graph is trivially a-balanced for a equal to its longest run.
        assert!(g.is_a_balanced(report.max_run.max(1)));
    }
}
