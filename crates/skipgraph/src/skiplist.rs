//! The balanced probabilistic skip list used by the AMF algorithm (§V).
//!
//! Given a linked list of `n` positions, AMF first constructs a skip list in
//! which the left-most node steps up to the next level with probability 1
//! and every other node with probability `1/a`. While each level is built,
//! nodes locally ensure that no two consecutive members of the level are
//! *supported* by fewer than `a/2` or more than `2a` nodes of the level
//! below ("supported by `k` nodes" means having `k - 1` nodes in between at
//! the immediately lower level). Construction ends when the left-most node
//! is the only member of the top level.
//!
//! The resulting structure is reused by the self-adjusting algorithm for
//! three distributed primitives, all `O(log n)` rounds:
//!
//! * gathering and sampling values for approximate median finding,
//! * computing distributed sums (|l_d|, |g_s|, |L_low|, |L_high|), and
//! * broadcasting a value (the approximate median, a new group-id) to every
//!   member of the base list.
//!
//! The skip list is built over *positions* `0..n` of the underlying linked
//! list rather than over node ids, so the same structure serves any list.

use rand::{Rng, RngExt};

/// A balanced probabilistic skip list over positions `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancedSkipList {
    /// `levels[0]` is `0..n`; `levels[h]` is the singleton `[0]`.
    levels: Vec<Vec<usize>>,
    a: usize,
    construction_rounds: usize,
}

impl BalancedSkipList {
    /// Builds a balanced skip list over `n` positions with balance
    /// parameter `a` (the same constant as the a-balance property), using
    /// `rng` for the probabilistic step-up decisions.
    ///
    /// # Panics
    ///
    /// Panics if `a < 2` (the support window `[a/2, 2a]` degenerates) or if
    /// `n == 0`.
    pub fn build<R: Rng + ?Sized>(n: usize, a: usize, rng: &mut R) -> Self {
        let mut list = BalancedSkipList {
            levels: Vec::new(),
            a,
            construction_rounds: 0,
        };
        list.rebuild(n, a, rng);
        list
    }

    /// Rebuilds the skip list in place over `n` positions, recycling the
    /// level vectors of the previous build. The AMF engine runs one median
    /// per list of a rebuilt subtree; reusing the allocations makes those
    /// back-to-back builds allocation-free while drawing exactly the same
    /// randomness (results are identical to a fresh [`Self::build`]).
    ///
    /// # Panics
    ///
    /// Panics if `a < 2` or `n == 0`.
    pub fn rebuild<R: Rng + ?Sized>(&mut self, n: usize, a: usize, rng: &mut R) {
        assert!(n > 0, "cannot build a skip list over an empty list");
        assert!(a >= 2, "the balance parameter a must be at least 2");
        self.a = a;
        self.construction_rounds = 0;
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        let base = &mut self.levels[0];
        base.clear();
        base.extend(0..n);
        let mut used = 1usize;
        loop {
            if self.levels[used - 1].len() <= 1 {
                break;
            }
            if self.levels.len() == used {
                self.levels.push(Vec::new());
            }
            let (head, tail) = self.levels.split_at_mut(used);
            let current = &head[used - 1];
            let next = &mut tail[0];
            Self::build_next_level_into(current, a, rng, next);
            // Linear neighbour search from the level below costs (at most)
            // the largest support gap; plus one round for the local support
            // checks.
            self.construction_rounds += Self::max_gap(current, next) + 1;
            if next.len() >= current.len() {
                // Degenerate random outcome (possible for tiny a): force a
                // deterministic thinning so construction terminates.
                let step = a.max(2);
                let mut keep = 0usize;
                let mut i = 0usize;
                while i < next.len() {
                    next[keep] = next[i];
                    keep += 1;
                    i += step;
                }
                next.truncate(keep);
            }
            used += 1;
        }
        self.levels.truncate(used);
        // The root broadcasts the height h to every node of the skip list.
        self.construction_rounds += self.levels.len();
    }

    /// Selects the members of the next level from `current` into `out`:
    /// position 0 always steps up, the rest with probability `1/a`, and the
    /// support constraint `a/2 ≤ support ≤ 2a` is enforced locally, fused
    /// into the same pass (the normalisation only ever looks at the last
    /// emitted member, so no intermediate list is needed).
    fn build_next_level_into<R: Rng + ?Sized>(
        current: &[usize],
        a: usize,
        rng: &mut R,
        out: &mut Vec<usize>,
    ) {
        let min_support = (a / 2).max(1);
        let max_support = 2 * a;
        // `out` first holds normalised *indices into current*; they are
        // mapped to positions at the end.
        out.clear();
        out.push(0);
        let mut last = 0usize;
        for idx in 1..current.len() {
            if rng.random_bool(1.0 / a as f64) {
                let support = idx - last;
                if support < min_support {
                    // Too close: this node steps back down (is skipped).
                    continue;
                }
                // Too far: intermediate nodes are asked to step up so that
                // no gap exceeds 2a.
                while idx - last > max_support {
                    last += max_support;
                    out.push(last);
                }
                out.push(idx);
                last = idx;
            }
        }
        // Handle the tail: values held by trailing positions are forwarded
        // to the last chosen node, so its support must also stay within the
        // window.
        while current.len() - last > max_support {
            last += max_support;
            out.push(last);
        }
        for slot in out.iter_mut() {
            *slot = current[*slot];
        }
    }

    fn max_gap(lower: &[usize], upper: &[usize]) -> usize {
        if upper.is_empty() {
            return lower.len();
        }
        let mut max = 0usize;
        // Positions of upper members within the lower level.
        let mut upper_iter = upper.iter().peekable();
        let mut last_idx = 0usize;
        for (idx, pos) in lower.iter().enumerate() {
            if upper_iter.peek() == Some(&pos) {
                max = max.max(idx - last_idx);
                last_idx = idx;
                upper_iter.next();
            }
        }
        max = max.max(lower.len() - 1 - last_idx);
        max
    }

    /// The balance parameter the skip list was built with.
    pub fn a(&self) -> usize {
        self.a
    }

    /// Number of positions in the underlying list.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Returns `true` if the underlying list has exactly one position.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Height `h` of the skip list: the index of the level at which the
    /// left-most node is singleton. A single-position list has height 0.
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// The members (as positions of the underlying list) present at `level`,
    /// in ascending order. Level 0 is the full list.
    pub fn level_members(&self, level: usize) -> &[usize] {
        &self.levels[level]
    }

    /// All levels, bottom-up.
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Number of synchronous rounds the distributed construction takes
    /// (neighbour searches per level plus the height broadcast). Expected
    /// `O(log n)` by Theorem 3's supporting argument.
    pub fn construction_rounds(&self) -> usize {
        self.construction_rounds
    }

    /// Checks the support invariant: between any two consecutive members of
    /// any level above the base, the support (distance in the level below)
    /// is at most `2a`; violations of the lower bound are tolerated for the
    /// final member of a level (the tail cannot always be padded).
    pub fn supports_within_bounds(&self) -> bool {
        for upper_level in 1..self.levels.len() {
            let lower = &self.levels[upper_level - 1];
            let upper = &self.levels[upper_level];
            let idx_of = |pos: usize| lower.binary_search(&pos).ok();
            let mut last_idx = match upper.first().and_then(|p| idx_of(*p)) {
                Some(i) => i,
                None => return false,
            };
            for pos in upper.iter().skip(1) {
                let idx = match idx_of(*pos) {
                    Some(i) => i,
                    None => return false,
                };
                if idx - last_idx > 2 * self.a {
                    return false;
                }
                last_idx = idx;
            }
            if lower.len() - 1 - last_idx > 2 * self.a {
                return false;
            }
        }
        true
    }

    /// Computes the sum of `values` (one per position of the underlying
    /// list) the way the distributed-sum protocol of Appendix D would:
    /// partial sums climb the skip list toward the left-most node, which
    /// then broadcasts the total. Returns the sum together with the number
    /// of rounds consumed.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the length of the underlying
    /// list.
    pub fn distributed_sum(&self, values: &[i64]) -> (i64, usize) {
        assert_eq!(
            values.len(),
            self.len(),
            "one value per position is required"
        );
        let sum = values.iter().sum();
        // Rounds: at each level, partial sums travel at most the largest
        // support gap leftward; then the total is broadcast back down.
        let mut rounds = 0usize;
        for upper_level in 1..self.levels.len() {
            rounds += Self::max_gap(&self.levels[upper_level - 1], &self.levels[upper_level]);
        }
        rounds += self.height(); // broadcast of the result
        (sum, rounds.max(1))
    }

    /// Number of rounds needed to broadcast one `O(log n)`-bit value from
    /// the root to every position of the underlying list.
    pub fn broadcast_rounds(&self) -> usize {
        let mut rounds = 0usize;
        for upper_level in 1..self.levels.len() {
            rounds += Self::max_gap(&self.levels[upper_level - 1], &self.levels[upper_level]);
        }
        rounds.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_position_list_is_trivial() {
        let mut rng = StdRng::seed_from_u64(1);
        let sl = BalancedSkipList::build(1, 2, &mut rng);
        assert_eq!(sl.height(), 0);
        assert_eq!(sl.len(), 1);
        assert_eq!(sl.level_members(0), &[0]);
    }

    #[test]
    fn top_level_is_the_leftmost_singleton() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [2usize, 5, 17, 100, 1000] {
            let sl = BalancedSkipList::build(n, 3, &mut rng);
            let top = sl.level_members(sl.height());
            assert_eq!(top, &[0], "n = {n}");
        }
    }

    #[test]
    fn every_level_is_a_subset_of_the_level_below() {
        let mut rng = StdRng::seed_from_u64(3);
        let sl = BalancedSkipList::build(500, 4, &mut rng);
        for level in 1..=sl.height() {
            let lower = sl.level_members(level - 1);
            for pos in sl.level_members(level) {
                assert!(lower.contains(pos));
            }
        }
    }

    #[test]
    fn supports_respect_the_upper_bound() {
        let mut rng = StdRng::seed_from_u64(4);
        for a in [2usize, 3, 4, 8] {
            for n in [10usize, 64, 257, 1024] {
                let sl = BalancedSkipList::build(n, a, &mut rng);
                assert!(
                    sl.supports_within_bounds(),
                    "support bound violated for n = {n}, a = {a}"
                );
            }
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [64usize, 256, 1024, 4096] {
            let a = 2usize;
            let sl = BalancedSkipList::build(n, a, &mut rng);
            // h = log_b n with a/2 <= b <= 2a, so h is between log_{2a} n
            // and log_{a/2} n; allow slack for the probabilistic build.
            let upper = (n as f64).log2() / ((a as f64) / 2.0).max(1.5).log2() + 4.0;
            assert!(
                (sl.height() as f64) <= upper.max(6.0) * 2.0,
                "height {} too large for n = {n}",
                sl.height()
            );
            assert!(sl.height() >= 1);
        }
    }

    #[test]
    fn construction_rounds_are_logarithmic() {
        let mut rng = StdRng::seed_from_u64(6);
        for n in [64usize, 512, 4096] {
            let a = 4usize;
            let sl = BalancedSkipList::build(n, a, &mut rng);
            let bound = 8.0 * (a as f64) * (n as f64).log2();
            assert!(
                (sl.construction_rounds() as f64) <= bound,
                "{} rounds for n = {n} exceeds {bound}",
                sl.construction_rounds()
            );
        }
    }

    #[test]
    fn distributed_sum_matches_sequential_sum() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 300usize;
        let sl = BalancedSkipList::build(n, 3, &mut rng);
        let values: Vec<i64> = (0..n as i64).map(|v| v * 3 - 100).collect();
        let (sum, rounds) = sl.distributed_sum(&values);
        assert_eq!(sum, values.iter().sum::<i64>());
        assert!(rounds >= 1);
        let bound = 8.0 * 3.0 * (n as f64).log2();
        assert!((rounds as f64) <= bound, "{rounds} rounds exceeds {bound}");
    }

    #[test]
    #[should_panic(expected = "one value per position")]
    fn distributed_sum_rejects_wrong_length() {
        let mut rng = StdRng::seed_from_u64(8);
        let sl = BalancedSkipList::build(10, 2, &mut rng);
        let _ = sl.distributed_sum(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_a_is_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = BalancedSkipList::build(10, 1, &mut rng);
    }
}
