//! CRC-32 (IEEE 802.3 / zlib polynomial) for the durability layer.
//!
//! The persistence subsystem in `dsg` frames its write-ahead journal and
//! snapshot files with a checksum so that a torn write, a bit flip on
//! disk, or a truncated copy is *detected* instead of replayed into the
//! engine. [`fasthash`](crate::fasthash) is the wrong tool for that job:
//! it is built for hash-map bucket spread, has no error-detection
//! guarantees, and is explicitly an unstable implementation detail. CRC-32
//! with the reflected IEEE polynomial `0xEDB88320` is the boring,
//! universally cross-checkable choice (`crc32("123456789") =
//! 0xCBF43926`), so on-disk artifacts can be verified by any external
//! tool.
//!
//! The implementation is the classic byte-at-a-time table walk with a
//! 256-entry table built in a `const` context — no allocation, no lazy
//! initialization, `no_std`-shaped (only `core` items are used). A
//! one-shot [`crc32`] helper covers contiguous buffers; the streaming
//! [`Crc32`] digest covers framed writers that checksum a header and a
//! payload without concatenating them.

/// The reflected IEEE 802.3 polynomial (the zlib/PNG/gzip CRC).
const POLYNOMIAL: u32 = 0xEDB8_8320;

/// The byte-at-a-time lookup table: entry `b` is the CRC state after
/// shifting out one byte `b` from an all-zero register.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut byte = 0usize;
    while byte < 256 {
        let mut crc = byte as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLYNOMIAL
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[byte] = crc;
        byte += 1;
    }
    table
}

/// Streaming CRC-32 digest.
///
/// Feed bytes with [`update`](Crc32::update) in any chunking — the digest
/// is chunking-invariant — and read the checksum with
/// [`finalize`](Crc32::finalize). The default value is the digest of the
/// empty message (`0x0000_0000` after finalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    /// The running register, stored pre-inverted (standard CRC-32 starts
    /// from `!0` and complements at the end).
    state: u32,
}

impl Crc32 {
    /// Creates a fresh digest.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Absorbs `bytes` into the digest.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the checksum of everything absorbed so far. The digest is
    /// copyable, so finalizing does not consume it; further updates
    /// continue from the same prefix.
    #[inline]
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a contiguous buffer.
#[inline]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut digest = Crc32::new();
    digest.update(bytes);
    digest.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_check_value() {
        // The canonical CRC-32/ISO-HDLC check vector, verifiable against
        // zlib, Python's binascii.crc32, cksum -o 3, etc.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_is_chunking_invariant() {
        let message = b"length-prefixed frame payload with some entropy 0123456789";
        let oneshot = crc32(message);
        for split in 0..message.len() {
            let mut digest = Crc32::new();
            digest.update(&message[..split]);
            digest.update(&message[split..]);
            assert_eq!(digest.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        // CRC-32 detects all single-bit errors; flip every bit of a small
        // frame and confirm the checksum moves.
        let message = b"frame";
        let reference = crc32(message);
        for byte in 0..message.len() {
            for bit in 0..8 {
                let mut corrupted = *message;
                corrupted[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&corrupted),
                    reference,
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn finalize_does_not_consume_the_digest() {
        let mut digest = Crc32::new();
        digest.update(b"ab");
        let ab = digest.finalize();
        assert_eq!(ab, crc32(b"ab"));
        digest.update(b"c");
        assert_eq!(digest.finalize(), crc32(b"abc"));
    }
}
