//! Ready-made skip graph instances used by tests, examples and benchmarks.
//!
//! The most important fixture is [`figure1`], the 6-node instance the paper
//! uses to introduce skip graphs (Figure 1). Larger parametric fixtures are
//! provided for benchmarks.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::graph::SkipGraph;
use crate::ids::Key;
use crate::mvec::{Bit, MembershipVector};

/// The 6-node skip graph of Figure 1 of the paper.
///
/// Keys follow the nodes' positions in the alphabet (A=1, G=7, J=10, M=13,
/// R=18, W=23). Membership vectors reproduce the figure: the level-1
/// 0-sublist is {A, J, M}, the 1-sublist is {G, R, W}, and the 10-subgraph
/// contains exactly {G, W}.
pub fn figure1() -> SkipGraph {
    let members = [
        (1u64, "00"),  // A
        (7, "10"),     // G
        (10, "00"),    // J
        (13, "01"),    // M
        (18, "11"),    // R
        (23, "10"),    // W
    ];
    SkipGraph::from_members(
        members
            .iter()
            .map(|(k, v)| (Key::new(*k), MembershipVector::parse(v).expect("fixture vector"))),
    )
    .expect("fixture keys are distinct")
}

/// A skip graph over keys `0..n` with uniformly random membership vectors,
/// seeded for reproducibility.
pub fn uniform_random(n: u64, seed: u64) -> SkipGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    SkipGraph::random((0..n).map(Key::new), &mut rng).expect("keys 0..n are distinct")
}

/// A perfectly balanced skip graph over keys `0..n`: the membership-vector
/// bit of a node at level `i` is bit `i - 1` of its rank. Every list at
/// every level splits exactly in half (by parity of the corresponding rank
/// bit), which yields the minimum possible height `⌈log₂ n⌉`.
pub fn perfectly_balanced(n: u64) -> SkipGraph {
    let height = if n <= 1 { 0 } else { (64 - (n - 1).leading_zeros()) as usize };
    SkipGraph::from_members((0..n).map(|rank| {
        let mut mvec = MembershipVector::empty();
        for level in 0..height {
            let bit = (rank >> level) & 1;
            mvec.push(Bit::from_u8(bit as u8)).expect("height <= 64");
        }
        (Key::new(rank), mvec)
    }))
    .expect("keys 0..n are distinct")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_is_valid() {
        let g = figure1();
        g.validate().unwrap();
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn uniform_random_is_reproducible() {
        let a = uniform_random(64, 9);
        let b = uniform_random(64, 9);
        for key in a.keys() {
            let ia = a.node_by_key(key).unwrap();
            let ib = b.node_by_key(key).unwrap();
            assert_eq!(a.mvec_of(ia).unwrap(), b.mvec_of(ib).unwrap());
        }
    }

    #[test]
    fn perfectly_balanced_has_minimum_height() {
        for n in [2u64, 4, 16, 64, 100, 128] {
            let g = perfectly_balanced(n);
            g.validate().unwrap();
            let expected = (n as f64).log2().ceil() as usize;
            assert_eq!(g.height(), expected, "n = {n}");
        }
    }

    #[test]
    fn perfectly_balanced_handles_tiny_inputs() {
        assert_eq!(perfectly_balanced(0).len(), 0);
        assert_eq!(perfectly_balanced(1).len(), 1);
        assert_eq!(perfectly_balanced(1).height(), 0);
    }
}
