//! Membership vectors and prefixes.
//!
//! Every node `x` of a skip graph holds a membership vector `m(x)`. The
//! `i`-th bit of `m(x)` (1-indexed by level, as in the paper) determines
//! whether `x` joins the 0-sublist or the 1-sublist when the level `i - 1`
//! list it belongs to splits at level `i`. The list a node belongs to at
//! level `d` is therefore identified by the length-`d` [`Prefix`] of its
//! membership vector.
//!
//! Vectors are stored as packed bits in a `u128`, which caps the structure
//! height at [`MembershipVector::MAX_LEVELS`] (128). All skip graphs in the
//! family considered by the paper have height `O(log n)`, so this limit is
//! never reached for any realistic `n`; exceeding it is reported as an error
//! by the graph-mutation APIs rather than silently truncated.

use std::fmt;

use crate::error::SkipGraphError;

/// A single membership-vector bit: which sublist a node joins when a list
/// splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Bit {
    /// The node joins the 0-sublist (left child in the tree view).
    Zero,
    /// The node joins the 1-sublist (right child in the tree view).
    One,
}

impl Bit {
    /// Converts the bit to `0` or `1`.
    pub fn as_u8(self) -> u8 {
        match self {
            Bit::Zero => 0,
            Bit::One => 1,
        }
    }

    /// Builds a bit from any integer: `0` maps to [`Bit::Zero`], everything
    /// else to [`Bit::One`].
    pub fn from_u8(value: u8) -> Self {
        if value == 0 {
            Bit::Zero
        } else {
            Bit::One
        }
    }

    /// Returns the opposite bit.
    pub fn flipped(self) -> Self {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u8())
    }
}

impl From<bool> for Bit {
    fn from(value: bool) -> Self {
        if value {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

/// A node's membership vector: the sequence of sublist choices, one per
/// level starting at level 1.
///
/// The derived ordering (packed bits, then length) is an arbitrary but
/// deterministic total order — callers that need "equal vectors adjacent"
/// grouping (the dummy-salvage snapshot) rely on it, nothing reads
/// structural meaning into it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MembershipVector {
    bits: u128,
    len: u16,
}

impl MembershipVector {
    /// Maximum number of levels a membership vector can describe.
    pub const MAX_LEVELS: usize = 128;

    /// Creates an empty membership vector (a node that is singleton already
    /// at level 1).
    pub fn empty() -> Self {
        MembershipVector { bits: 0, len: 0 }
    }

    /// Builds a membership vector from bits given **from level 1 upward**.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::HeightLimitExceeded`] if more than
    /// [`Self::MAX_LEVELS`] bits are supplied.
    pub fn from_bits<I>(bits: I) -> Result<Self, SkipGraphError>
    where
        I: IntoIterator<Item = Bit>,
    {
        let mut mv = MembershipVector::empty();
        for bit in bits {
            mv.push(bit)?;
        }
        Ok(mv)
    }

    /// Parses a membership vector from a string of `'0'` / `'1'` characters,
    /// most significant (level 1) first. Convenient for tests mirroring the
    /// paper's figures, e.g. `"01"` for node *M* in Figure 1.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::InvalidMembershipVector`] on any character
    /// other than `'0'` or `'1'`, or if the string is longer than
    /// [`Self::MAX_LEVELS`].
    pub fn parse(text: &str) -> Result<Self, SkipGraphError> {
        let mut mv = MembershipVector::empty();
        for ch in text.chars() {
            let bit = match ch {
                '0' => Bit::Zero,
                '1' => Bit::One,
                other => {
                    return Err(SkipGraphError::InvalidMembershipVector(format!(
                        "unexpected character {other:?} in membership vector"
                    )))
                }
            };
            mv.push(bit)?;
        }
        Ok(mv)
    }

    /// Number of levels described by this vector.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the vector describes no levels.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit used at `level` (levels are 1-indexed, as in the
    /// paper), or `None` if the vector is shorter than `level`.
    pub fn bit(&self, level: usize) -> Option<Bit> {
        if level == 0 || level > self.len() {
            return None;
        }
        let idx = level - 1;
        Some(if (self.bits >> idx) & 1 == 1 {
            Bit::One
        } else {
            Bit::Zero
        })
    }

    /// Appends one more level choice.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::HeightLimitExceeded`] if the vector already
    /// has [`Self::MAX_LEVELS`] bits.
    pub fn push(&mut self, bit: Bit) -> Result<(), SkipGraphError> {
        if self.len() >= Self::MAX_LEVELS {
            return Err(SkipGraphError::HeightLimitExceeded {
                limit: Self::MAX_LEVELS,
            });
        }
        if bit == Bit::One {
            self.bits |= 1u128 << self.len;
        }
        self.len += 1;
        Ok(())
    }

    /// Truncates the vector so that it describes only levels `1..=levels`.
    /// Truncating to a length greater than the current length is a no-op.
    pub fn truncate(&mut self, levels: usize) {
        if levels >= self.len() {
            return;
        }
        let keep = levels as u32;
        let mask = if keep == 0 {
            0
        } else {
            (!0u128) >> (128 - keep)
        };
        self.bits &= mask;
        self.len = levels as u16;
    }

    /// Returns the prefix of this vector identifying the node's list at
    /// `level`. Level 0 always yields the empty prefix (the base list that
    /// contains every node).
    ///
    /// If the vector is shorter than `level`, the full vector is returned as
    /// the prefix: a node that is already singleton stays (conceptually) in
    /// its singleton list at every higher level.
    pub fn prefix(&self, level: usize) -> Prefix {
        let len = level.min(self.len());
        let mask = if len == 0 {
            0
        } else {
            (!0u128) >> (128 - len as u32)
        };
        Prefix {
            bits: self.bits & mask,
            len: len as u16,
        }
    }

    /// Length of the longest common prefix between two membership vectors,
    /// i.e. the highest level at which the two nodes share a linked list.
    pub fn common_prefix_len(&self, other: &MembershipVector) -> usize {
        let max = self.len().min(other.len());
        let diff = self.bits ^ other.bits;
        let first_diff = diff.trailing_zeros() as usize;
        first_diff.min(max)
    }

    /// Length of the longest common *postfix* (suffix) between two
    /// membership vectors, used by timestamp rules T2 and T3 of the paper.
    ///
    /// The suffix is measured from the top of the *shorter* vector downward:
    /// bit `len` of one vector is compared against bit `len` of the other,
    /// then `len - 1`, and so on.
    pub fn common_postfix_len(&self, other: &MembershipVector) -> usize {
        let max = self.len().min(other.len());
        let mut count = 0;
        for i in 0..max {
            let la = self.len() - i;
            let lb = other.len() - i;
            if self.bit(la) == other.bit(lb) {
                count += 1;
            } else {
                break;
            }
        }
        count
    }

    /// Replaces all bits at levels `>= from_level` with `new_bits`
    /// (given from `from_level` upward).
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::HeightLimitExceeded`] if the resulting
    /// vector would exceed [`Self::MAX_LEVELS`] bits.
    pub fn replace_suffix<I>(&mut self, from_level: usize, new_bits: I) -> Result<(), SkipGraphError>
    where
        I: IntoIterator<Item = Bit>,
    {
        let keep = from_level.saturating_sub(1);
        self.truncate(keep);
        for bit in new_bits {
            self.push(bit)?;
        }
        Ok(())
    }

    /// Iterates over the bits from level 1 upward.
    pub fn iter(&self) -> impl Iterator<Item = Bit> + '_ {
        (1..=self.len()).map(|lvl| self.bit(lvl).expect("level within length"))
    }
}

impl fmt::Debug for MembershipVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m(")?;
        for bit in self.iter() {
            write!(f, "{bit}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for MembershipVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        for bit in self.iter() {
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

/// A length-`d` bit string identifying one linked list at level `d`: the
/// common membership-vector prefix shared by every node in that list
/// (the paper's "b-subgraph" designation).
///
/// The `Ord` implementation is an arbitrary but stable total order (packed
/// bits, then length); batch operations sort by it so that their processing
/// order never depends on hash-map iteration order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Prefix {
    bits: u128,
    len: u16,
}

impl Prefix {
    /// The empty prefix: the level-0 list containing every node.
    pub fn root() -> Self {
        Prefix { bits: 0, len: 0 }
    }

    /// The level this prefix identifies a list at (its length).
    pub fn level(&self) -> usize {
        self.len as usize
    }

    /// Returns the bit at `level` (1-indexed) of this prefix.
    pub fn bit(&self, level: usize) -> Option<Bit> {
        if level == 0 || level > self.level() {
            return None;
        }
        Some(if (self.bits >> (level - 1)) & 1 == 1 {
            Bit::One
        } else {
            Bit::Zero
        })
    }

    /// Extends the prefix by one bit, producing the prefix of the 0- or
    /// 1-sublist at the next level (the left or right child in the tree
    /// view).
    pub fn child(&self, bit: Bit) -> Prefix {
        let mut bits = self.bits;
        if bit == Bit::One {
            bits |= 1u128 << self.len;
        }
        Prefix {
            bits,
            len: self.len + 1,
        }
    }

    /// Returns the parent prefix (one level shorter), or `None` for the
    /// root.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        let mask = if len == 0 {
            0
        } else {
            (!0u128) >> (128 - len as u32)
        };
        Some(Prefix {
            bits: self.bits & mask,
            len,
        })
    }

    /// Returns `true` if `self` is a prefix of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &Prefix) -> bool {
        if self.len > other.len {
            return false;
        }
        let mask = if self.len == 0 {
            0
        } else {
            (!0u128) >> (128 - self.len as u32)
        };
        (other.bits & mask) == self.bits
    }

    /// Iterates over the bits of the prefix from level 1 upward.
    pub fn iter(&self) -> impl Iterator<Item = Bit> + '_ {
        (1..=self.level()).map(|lvl| self.bit(lvl).expect("level within length"))
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p(")?;
        for bit in self.iter() {
            write!(f, "{bit}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.level() == 0 {
            return write!(f, "ε");
        }
        for bit in self.iter() {
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let mv = MembershipVector::parse("0110").unwrap();
        assert_eq!(mv.len(), 4);
        assert_eq!(mv.to_string(), "0110");
        assert_eq!(mv.bit(1), Some(Bit::Zero));
        assert_eq!(mv.bit(2), Some(Bit::One));
        assert_eq!(mv.bit(3), Some(Bit::One));
        assert_eq!(mv.bit(4), Some(Bit::Zero));
        assert_eq!(mv.bit(5), None);
        assert_eq!(mv.bit(0), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MembershipVector::parse("01x0").is_err());
    }

    #[test]
    fn paper_figure1_node_m_vector() {
        // Node M in Figure 1(b) has membership vector 01: 0-sublist at
        // level 1, 1-sublist at level 2.
        let m = MembershipVector::parse("01").unwrap();
        assert_eq!(m.bit(1), Some(Bit::Zero));
        assert_eq!(m.bit(2), Some(Bit::One));
    }

    #[test]
    fn prefix_of_levels() {
        let mv = MembershipVector::parse("101").unwrap();
        assert_eq!(mv.prefix(0), Prefix::root());
        assert_eq!(mv.prefix(1).to_string(), "1");
        assert_eq!(mv.prefix(2).to_string(), "10");
        assert_eq!(mv.prefix(3).to_string(), "101");
        // Past the end of the vector the full vector acts as the prefix.
        assert_eq!(mv.prefix(9).to_string(), "101");
    }

    #[test]
    fn common_prefix_is_highest_shared_level() {
        let a = MembershipVector::parse("1011").unwrap();
        let b = MembershipVector::parse("1001").unwrap();
        assert_eq!(a.common_prefix_len(&b), 2);
        let c = MembershipVector::parse("0011").unwrap();
        assert_eq!(a.common_prefix_len(&c), 0);
        assert_eq!(a.common_prefix_len(&a), 4);
    }

    #[test]
    fn common_postfix_measured_from_the_top() {
        let a = MembershipVector::parse("1011").unwrap();
        let b = MembershipVector::parse("0011").unwrap();
        // Suffixes: a = ...0,1,1 ; b = ...0,1,1 -> 3 shared from the top.
        assert_eq!(a.common_postfix_len(&b), 3);
        let c = MembershipVector::parse("1010").unwrap();
        assert_eq!(a.common_postfix_len(&c), 0);
    }

    #[test]
    fn replace_suffix_keeps_lower_levels() {
        let mut mv = MembershipVector::parse("1011").unwrap();
        mv.replace_suffix(3, [Bit::Zero, Bit::Zero, Bit::One]).unwrap();
        assert_eq!(mv.to_string(), "10001");
    }

    #[test]
    fn truncate_clears_upper_bits() {
        let mut mv = MembershipVector::parse("1111").unwrap();
        mv.truncate(2);
        assert_eq!(mv.to_string(), "11");
        let other = MembershipVector::parse("11").unwrap();
        assert_eq!(mv, other);
    }

    #[test]
    fn prefix_child_parent_roundtrip() {
        let p = Prefix::root().child(Bit::One).child(Bit::Zero);
        assert_eq!(p.to_string(), "10");
        assert_eq!(p.parent().unwrap().to_string(), "1");
        assert_eq!(p.parent().unwrap().parent().unwrap(), Prefix::root());
        assert_eq!(Prefix::root().parent(), None);
    }

    #[test]
    fn prefix_containment() {
        let a = Prefix::root().child(Bit::One);
        let b = a.child(Bit::Zero);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(Prefix::root().is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
    }

    #[test]
    fn height_limit_is_enforced() {
        let mut mv = MembershipVector::empty();
        for _ in 0..MembershipVector::MAX_LEVELS {
            mv.push(Bit::One).unwrap();
        }
        assert!(matches!(
            mv.push(Bit::Zero),
            Err(SkipGraphError::HeightLimitExceeded { .. })
        ));
    }
}
