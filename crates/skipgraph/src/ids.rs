//! Node identifiers and keys.
//!
//! Skip graph nodes are ordered by an application-supplied [`Key`]. Inside
//! the arena-backed [`SkipGraph`](crate::SkipGraph) each live node is also
//! addressed by a stable [`NodeId`], which is what algorithm code passes
//! around (cheap `Copy`, no borrow-checker friction with overlay pointers).

use std::fmt;

/// A stable handle to a node slot inside a [`SkipGraph`](crate::SkipGraph)
/// arena.
///
/// `NodeId`s are never reused while the node is alive; removing a node frees
/// its slot for future insertions. A `NodeId` obtained from one graph must
/// not be used with another graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index. Intended for tests and tools;
    /// algorithm code should use ids handed out by the graph.
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the raw arena index backing this id.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the arena index as a `usize`.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The totally ordered key of a skip graph node.
///
/// The paper calls these "identifiers"; nodes are kept in ascending key
/// order in every linked list at every level. Keys double as the group
/// identifiers and as the numeric identifiers used by the priority rules of
/// the self-adjusting algorithm, so they are plain unsigned integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Key(pub u64);

impl Key {
    /// Creates a new key from a raw integer.
    pub fn new(value: u64) -> Self {
        Key(value)
    }

    /// Returns the raw integer value of the key.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Key {
    fn from(value: u64) -> Self {
        Key(value)
    }
}

impl From<Key> for u64 {
    fn from(key: Key) -> Self {
        key.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ordering_matches_integer_ordering() {
        let mut keys = vec![Key::new(5), Key::new(1), Key::new(3)];
        keys.sort();
        assert_eq!(keys, vec![Key::new(1), Key::new(3), Key::new(5)]);
    }

    #[test]
    fn key_roundtrips_through_u64() {
        let k = Key::from(42u64);
        assert_eq!(u64::from(k), 42);
        assert_eq!(k.value(), 42);
    }

    #[test]
    fn node_id_display_is_compact() {
        assert_eq!(NodeId::from_raw(7).to_string(), "n7");
        assert_eq!(NodeId::from_raw(7).raw(), 7);
    }

    #[test]
    fn key_display_shows_value() {
        assert_eq!(Key::new(19).to_string(), "19");
    }
}
