//! The skip graph structure, stored as an intrusive linked-list arena.
//!
//! Skip graph nodes are, semantically, members of one doubly linked list
//! per level (Aspnes & Shah, SODA'03). This module materialises exactly
//! that: nodes live in an arena addressed by [`NodeId`], and each arena
//! slot carries an inline vector of per-level `{prev, next, list}` link
//! records. Neighbour queries ([`SkipGraph::neighbors`]) are therefore two
//! pointer reads — no hashing, no tree walk, no allocation — and every
//! list keeps a cached head, tail and length, so
//! [`SkipGraph::list_size`] is O(1) as well.
//!
//! A per-level `Prefix → list` index is kept *only* for enumeration and
//! construction (finding the list a joining node belongs to); the hot
//! paths — routing hops, balance sweeps, list scans — never touch it.
//! List members are walked with the borrowing iterators
//! ([`SkipGraph::list_iter`], [`SkipGraph::list_of_iter`],
//! [`SkipGraph::lists_at_level_iter`]), which allocate nothing; the
//! `Vec`-returning queries remain as conveniences for tests and one-shot
//! tooling.
//!
//! This "central store, distributed semantics" representation is the
//! idiomatic Rust answer to overlay pointers: algorithm code manipulates
//! ids, never references, and the distributed cost of each operation is
//! accounted separately by the callers (see the `dsg` crate). A naive
//! index-based twin of this structure lives in [`crate::reference`] and is
//! used for differential testing and for benchmarking the arena's speedup.
//!
//! ## Differential membership installs
//!
//! The self-adjusting layer moves nodes between subgraphs by rewriting
//! membership-vector suffixes. The per-node primitive
//! ([`SkipGraph::set_membership_suffix`]) re-splices the node at *every*
//! level; [`SkipGraph::apply_membership_batch`] is its differential, batched
//! twin: each update names the first level at which the node's vector
//! actually changes ([`MembershipUpdate::from_level`]), the node's links
//! below that level are left untouched, and the changed `(node, level)`
//! pairs are grouped by target list so that every affected list is rebuilt
//! in a single ordered splice pass. Untouched list segments — including
//! entire lists whose membership did not change — are reused in place,
//! which also means they keep serving reads (neighbour queries, group-id
//! scans) with no rebuild cost. The batch additionally reports the
//! *affected lists* (see
//! [`SkipGraph::apply_membership_batch_collecting`]), which is what lets
//! the balance repair above this layer re-check only the lists whose run
//! structure could have changed.

use std::collections::{BTreeMap, HashMap};

use rand::{Rng, RngExt};

use crate::error::SkipGraphError;
use crate::fasthash::{FastHashState, KeyHashState};
use crate::ids::{Key, NodeId};
use crate::mvec::{Bit, MembershipVector, Prefix};
use crate::smallvec::SmallVec;
use crate::Result;

/// A single node of the skip graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    key: Key,
    mvec: MembershipVector,
    dummy: bool,
}

impl NodeEntry {
    /// The node's key (its position in every linked list).
    pub fn key(&self) -> Key {
        self.key
    }

    /// The node's membership vector.
    pub fn mvec(&self) -> &MembershipVector {
        &self.mvec
    }

    /// Whether the node is a *dummy* node: a logical routing-only node
    /// inserted to protect the a-balance property (paper §IV-F).
    pub fn is_dummy(&self) -> bool {
        self.dummy
    }
}

/// Identifies one linked list of the skip graph: the list at `level` whose
/// members share the membership-vector `prefix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListRef {
    /// The level of the list (0 = base list containing every node).
    pub level: usize,
    /// The membership-vector prefix shared by all members.
    pub prefix: Prefix,
}

impl ListRef {
    /// The base list at level 0.
    pub fn root() -> Self {
        ListRef {
            level: 0,
            prefix: Prefix::root(),
        }
    }
}

/// Index of a [`ListMeta`] record in the list arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ListId(u32);

impl ListId {
    const NONE: ListId = ListId(u32::MAX);

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl Default for ListId {
    fn default() -> Self {
        ListId::NONE
    }
}

/// One entry of a differential membership-vector batch
/// ([`SkipGraph::apply_membership_batch`]): the node, the complete new
/// vector, and the first level at which the new vector differs from the
/// current one (every bit below `from_level` is unchanged, so the node's
/// lists below that level are not touched by the install).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipUpdate {
    /// The node whose vector changes.
    pub node: NodeId,
    /// The first level (1-indexed bit position) whose bit — or existence —
    /// differs between the old and new vector.
    pub from_level: usize,
    /// The complete new membership vector.
    pub new_mvec: MembershipVector,
}

/// Reusable workspace of [`SkipGraph::apply_membership_batch`]: the changed
/// `(node, level)` pairs grouped by target list, plus recycled allocations
/// so that a warm batch install allocates nothing.
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    /// `(level, new prefix)` → incoming nodes for that list.
    groups: HashMap<(usize, Prefix), Vec<NodeId>, FastHashState>,
    /// Recycled group member vectors.
    spare: Vec<Vec<NodeId>>,
    /// Sorted group keys, so the splice order is deterministic.
    order: Vec<(usize, Prefix)>,
}

/// The intrusive per-level link record of one node: its left and right
/// neighbours in the list it belongs to at that level, plus the list
/// itself (so membership tests and size queries are O(1)).
#[derive(Debug, Clone, Copy, Default)]
struct LevelLink {
    prev: Option<NodeId>,
    next: Option<NodeId>,
    list: ListId,
}

/// Number of link records stored inline in each arena slot. Structure
/// height is `O(log n)`, so levels beyond this only occur in graphs of
/// thousands of nodes and spill to the heap transparently.
const INLINE_LEVELS: usize = 6;

type LinkVec = SmallVec<LevelLink, INLINE_LEVELS>;

#[derive(Debug, Clone, Default)]
struct Slot {
    entry: Option<NodeEntry>,
    links: LinkVec,
}

/// Cached descriptor of one linked list: its identity plus head, tail and
/// length, maintained incrementally by every splice.
#[derive(Debug, Clone)]
struct ListMeta {
    prefix: Prefix,
    level: usize,
    head: NodeId,
    tail: NodeId,
    len: usize,
    /// Last batch-install epoch that touched this list (0 = never). Used to
    /// deduplicate the affected-list collection without hashing.
    stamp: u64,
    /// Members whose membership vector *ends* at this list's level (their
    /// topmost list is this one). The randomised join must lazily extend
    /// exactly these members when it descends through the list; counting
    /// them lets the common case (zero stoppers) skip the member scan
    /// entirely, keeping bulk construction near-linear.
    stoppers: usize,
    /// Dummy members of the list. The reconciliation's fused
    /// collect + detect walk skips dummy-free lists without touching a
    /// single member.
    dummies: usize,
}

/// The key → node index of the graph: an exact-lookup fasthash map paired
/// with an ordered `BTreeMap` over the same `(key, id)` entries.
///
/// The hash half exists for the *dummy repair* hot path:
/// `free_key_between` (in the `dsg` crate) resolves every dummy key by
/// probing candidate keys for occupancy, and under uniform traffic most
/// split decisions are rewritten each request, so thousands of dummies
/// churn per request at large n — an O(1) hash probe with no tree walk
/// makes those probes 7–12× cheaper (the `dummy_probe` table in
/// `BENCH_perf.json`). The ordered half serves predecessor/successor
/// queries and ascending iteration. A sorted `Vec` was measured for the
/// ordered half first and rejected: at ~10k dummy inserts/removals per
/// request (n = 4096) the O(n) tail `memmove` per mutation cost more than
/// the probe win saved.
#[derive(Debug, Clone, Default)]
struct KeyIndex {
    /// Ordered view: predecessor/successor and ascending iteration.
    tree: BTreeMap<Key, NodeId>,
    /// Exact-lookup index over the same pairs (the occupancy-probe path).
    /// Keyed with the *finalised* hasher: node keys share the `2^20`
    /// `KEY_SPACING` stride, which the plain FxHash maps into one bucket
    /// chain (see [`KeyHashState`]).
    map: HashMap<Key, NodeId, KeyHashState>,
}

impl KeyIndex {
    fn len(&self) -> usize {
        self.map.len()
    }

    fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn contains(&self, key: Key) -> bool {
        self.map.contains_key(&key)
    }

    fn get(&self, key: Key) -> Option<NodeId> {
        self.map.get(&key).copied()
    }

    fn insert(&mut self, key: Key, id: NodeId) {
        self.map.insert(key, id);
        self.tree.insert(key, id);
    }

    fn remove(&mut self, key: Key) {
        if self.map.remove(&key).is_some() {
            let removed = self.tree.remove(&key);
            debug_assert!(removed.is_some());
        }
    }

    /// The entry with the largest key strictly below `key`.
    fn predecessor(&self, key: Key) -> Option<NodeId> {
        self.tree.range(..key).next_back().map(|(_, &id)| id)
    }

    /// The entry with the smallest key strictly above `key`.
    fn successor(&self, key: Key) -> Option<NodeId> {
        self.tree
            .range((std::ops::Bound::Excluded(key), std::ops::Bound::Unbounded))
            .next()
            .map(|(_, &id)| id)
    }

    /// All `(key, id)` entries in ascending key order.
    fn iter(&self) -> impl Iterator<Item = (Key, NodeId)> + '_ {
        self.tree.iter().map(|(&key, &id)| (key, id))
    }
}

/// A skip graph: the family-`S` data structure of the paper.
///
/// See the [crate-level documentation](crate) for an overview and an
/// example, and the [module documentation](self) for the representation.
#[derive(Debug, Clone, Default)]
pub struct SkipGraph {
    arena: Vec<Slot>,
    free: Vec<u32>,
    by_key: KeyIndex,
    /// List arena; `None` slots are free (ids recycled via `free_lists`).
    lists: Vec<Option<ListMeta>>,
    free_lists: Vec<u32>,
    /// `levels[d]` maps each length-`d` prefix to the list of nodes whose
    /// membership vector starts with that prefix. Used for enumeration and
    /// for locating the target list during construction only. Keyed with
    /// the crate's fast hasher: these maps sit on the link/install path of
    /// every level of every node.
    levels: Vec<HashMap<Prefix, ListId, FastHashState>>,
    /// `multi[d]` counts the lists at level `d` with two or more members,
    /// making [`SkipGraph::height`] a left-to-right scan of a small array.
    multi: Vec<usize>,
    /// Live dummy-node count, maintained on insert/remove so
    /// [`SkipGraph::dummy_count`] is O(1).
    dummies: usize,
    /// Reusable workspace of [`SkipGraph::apply_membership_batch`].
    batch: BatchScratch,
    /// Monotone counter identifying the current batch install, for the
    /// `stamp` based affected-list deduplication.
    batch_epoch: u64,
}

impl SkipGraph {
    /// Creates an empty skip graph.
    pub fn new() -> Self {
        SkipGraph::default()
    }

    /// Builds a skip graph from an explicit set of `(key, membership
    /// vector)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if two members share a key.
    pub fn from_members<I>(members: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Key, MembershipVector)>,
    {
        let mut graph = SkipGraph::new();
        for (key, mvec) in members {
            graph.insert(key, mvec)?;
        }
        Ok(graph)
    }

    /// Builds a skip graph over `keys` with uniformly random membership
    /// vectors, extending every node's vector until it is singleton — the
    /// standard randomised skip graph construction.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if `keys` contains
    /// duplicates.
    pub fn random<I, R>(keys: I, rng: &mut R) -> Result<Self>
    where
        I: IntoIterator<Item = Key>,
        R: Rng + ?Sized,
    {
        let mut graph = SkipGraph::new();
        for key in keys {
            graph.insert_random(key, rng)?;
        }
        Ok(graph)
    }

    // ------------------------------------------------------------------
    // Insertion / removal
    // ------------------------------------------------------------------

    /// Inserts a node with an explicit membership vector.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if a node with `key` already
    /// exists.
    pub fn insert(&mut self, key: Key, mvec: MembershipVector) -> Result<NodeId> {
        self.insert_inner(key, mvec, false)
    }

    /// Inserts a *dummy* node (a routing-only placeholder used to repair the
    /// a-balance property, paper §IV-F).
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if a node with `key` already
    /// exists.
    pub fn insert_dummy(&mut self, key: Key, mvec: MembershipVector) -> Result<NodeId> {
        self.insert_inner(key, mvec, true)
    }

    /// Inserts a node choosing membership-vector bits uniformly at random
    /// until the node is the only member of its top-level list — the
    /// standard skip graph join.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if a node with `key` already
    /// exists.
    pub fn insert_random<R>(&mut self, key: Key, rng: &mut R) -> Result<NodeId>
    where
        R: Rng + ?Sized,
    {
        if self.by_key.contains(key) {
            return Err(SkipGraphError::DuplicateKey(key));
        }
        // Walk down: starting from the root list, keep choosing random bits
        // while the list joined at the current level is non-empty.
        // Membership vectors are conceptually infinite strings of random
        // bits; as in the standard join protocol, any existing member of a
        // list the new node passes through that has not yet materialised its
        // bit for the next level draws one now (otherwise two nodes could
        // stay together in a large list forever, destroying the O(log n)
        // routing guarantee).
        let mut mvec = MembershipVector::empty();
        let mut prefix = Prefix::root();
        let mut needs_extension: Vec<NodeId> = Vec::new();
        loop {
            let level = prefix.level();
            let lid = match self.levels.get(level).and_then(|m| m.get(&prefix)) {
                Some(&lid) => lid,
                None => break,
            };
            // Lazily extend the existing members that stop at this level.
            // The list's stopper count says how many there are; in the
            // common case (zero) the member scan is skipped entirely, so
            // a bulk construction does O(height + extensions) work per
            // insert instead of copying whole lists.
            if self.list_meta(lid).stoppers > 0 {
                needs_extension.clear();
                needs_extension.extend(self.list_id_iter(lid).filter(|&id| {
                    self.entry(id).expect("list member is live").mvec.len() < level + 1
                }));
                // Every member of a level-`level` list has a vector of at
                // least `level` bits, so a stopper's length is exactly
                // `level` and the new bit goes at `level + 1`.
                for &id in &needs_extension {
                    let bit: Bit = rng.random_bool(0.5).into();
                    self.set_membership_suffix(id, level + 1, [bit])?;
                }
            }
            let bit: Bit = rng.random_bool(0.5).into();
            mvec.push(bit)?;
            prefix = prefix.child(bit);
        }
        self.insert_inner(key, mvec, false)
    }

    fn insert_inner(&mut self, key: Key, mvec: MembershipVector, dummy: bool) -> Result<NodeId> {
        if self.by_key.contains(key) {
            return Err(SkipGraphError::DuplicateKey(key));
        }
        let id = self.alloc_node(NodeEntry { key, mvec, dummy });
        self.link_node(id);
        Ok(id)
    }

    /// Allocates an arena slot for `entry` (reusing freed ids), registers
    /// the key, and bumps the dummy count — without linking the node into
    /// any list. Every caller must link the node before returning control.
    fn alloc_node(&mut self, entry: NodeEntry) -> NodeId {
        let key = entry.key;
        let dummy = entry.dummy;
        let id = match self.free.pop() {
            Some(raw) => {
                let id = NodeId(raw);
                self.arena[id.index()].entry = Some(entry);
                id
            }
            None => {
                let id = NodeId(self.arena.len() as u32);
                self.arena.push(Slot {
                    entry: Some(entry),
                    links: LinkVec::default(),
                });
                id
            }
        };
        self.by_key.insert(key, id);
        if dummy {
            self.dummies += 1;
        }
        id
    }

    /// Removes the node with the given key, returning its entry.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownKey`] if no such node exists.
    pub fn remove_key(&mut self, key: Key) -> Result<NodeEntry> {
        let id = self
            .by_key
            .get(key)
            .ok_or(SkipGraphError::UnknownKey(key))?;
        self.remove(id)
    }

    /// Removes a node by id, returning its entry.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] if the id is not live.
    pub fn remove(&mut self, id: NodeId) -> Result<NodeEntry> {
        let entry = self
            .arena
            .get(id.index())
            .and_then(|s| s.entry.clone())
            .ok_or(SkipGraphError::UnknownNode(id))?;
        self.unlink_node(id);
        self.by_key.remove(entry.key);
        if entry.dummy {
            self.dummies -= 1;
        }
        self.arena[id.index()].entry = None;
        self.free.push(id.raw());
        Ok(entry)
    }

    // ------------------------------------------------------------------
    // Link maintenance
    // ------------------------------------------------------------------

    /// Links a freshly inserted node into its list at every level
    /// `0..=len(mvec)`, bottom-up. The level-0 position comes from the key
    /// index; every higher-level position is found by walking left along
    /// the level below until a member of the target list is met — the
    /// standard join walk, O(1) steps in expectation per level for random
    /// membership vectors.
    fn link_node(&mut self, id: NodeId) {
        let (key, len, mvec, is_dummy) = {
            let entry = self.entry(id).expect("node just inserted");
            (entry.key, entry.mvec.len(), entry.mvec, entry.dummy)
        };
        debug_assert_eq!(self.arena[id.index()].links.len(), 0);
        for level in 0..=len {
            let prefix = mvec.prefix(level);
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, HashMap::default);
                self.multi.resize(level + 1, 0);
            }
            match self.levels[level].get(&prefix).copied() {
                None => {
                    let lid = self.alloc_list(ListMeta {
                        prefix,
                        level,
                        head: id,
                        tail: id,
                        len: 1,
                        stamp: 0,
                        stoppers: usize::from(level == len),
                        dummies: usize::from(is_dummy),
                    });
                    self.levels[level].insert(prefix, lid);
                    self.arena[id.index()].links.push(LevelLink {
                        prev: None,
                        next: None,
                        list: lid,
                    });
                }
                Some(lid) => {
                    let pred = self.link_predecessor(id, key, level, lid);
                    self.splice_in(id, level, lid, pred);
                    if level == len {
                        self.list_meta_mut(lid).stoppers += 1;
                    }
                }
            }
        }
    }

    /// Finds the node after which `id` must be spliced into list `lid` at
    /// `level` (`None` = `id` becomes the new head).
    ///
    /// The primary strategy walks left along the level below until a member
    /// of the target list is met — O(1) steps in expectation for random
    /// membership vectors, because an expected constant fraction of the
    /// level-below list belongs to the target list. For adversarial vector
    /// layouts the gap can be as long as the whole level-below list, so the
    /// walk is capped at the target list's length: past that point a head
    /// scan of the target list (which costs exactly that much) is never
    /// slower, making the join O(target list size) in the worst case.
    fn link_predecessor(
        &self,
        id: NodeId,
        key: Key,
        level: usize,
        lid: ListId,
    ) -> Option<NodeId> {
        if level == 0 {
            return self.predecessor_by_key(key);
        }
        // Walk left along the level below. List refinement guarantees every
        // member of the target list appears there, in the same key order.
        let mut budget = self.list_meta(lid).len;
        let mut cursor = self.arena[id.index()]
            .links
            .get(level - 1)
            .and_then(|l| l.prev);
        while let Some(candidate) = cursor {
            let links = &self.arena[candidate.index()].links;
            if links.get(level).map(|l| l.list) == Some(lid) {
                return Some(candidate);
            }
            if budget == 0 {
                // Pathological layout: fall back to scanning the target list
                // from its head for the last member with a smaller key.
                return self.predecessor_by_head_scan(key, lid);
            }
            budget -= 1;
            cursor = links.get(level - 1).and_then(|l| l.prev);
        }
        None
    }

    /// Predecessor of `key` in list `lid` found by scanning from the list
    /// head — the O(list size) fallback for adversarial layouts.
    fn predecessor_by_head_scan(&self, key: Key, lid: ListId) -> Option<NodeId> {
        let meta = self.list_meta(lid);
        let level = meta.level;
        let mut pred = None;
        let mut cursor = Some(meta.head);
        while let Some(member) = cursor {
            let member_key = self.arena[member.index()]
                .entry
                .as_ref()
                .expect("list member is live")
                .key;
            if member_key >= key {
                break;
            }
            pred = Some(member);
            cursor = self.arena[member.index()]
                .links
                .get(level)
                .and_then(|l| l.next);
        }
        pred
    }

    /// Splices `id` into list `lid` at `level`, after `pred` (or at the
    /// head), appending the level's link record to `id`'s slot.
    fn splice_in(&mut self, id: NodeId, level: usize, lid: ListId, pred: Option<NodeId>) {
        let link = match pred {
            Some(p) => {
                let next = self.arena[p.index()]
                    .links
                    .get(level)
                    .expect("predecessor is linked at this level")
                    .next;
                self.arena[p.index()]
                    .links
                    .get_mut(level)
                    .expect("predecessor is linked at this level")
                    .next = Some(id);
                match next {
                    Some(n) => {
                        self.arena[n.index()]
                            .links
                            .get_mut(level)
                            .expect("successor is linked at this level")
                            .prev = Some(id);
                    }
                    None => {
                        self.list_meta_mut(lid).tail = id;
                    }
                }
                LevelLink {
                    prev: Some(p),
                    next,
                    list: lid,
                }
            }
            None => {
                let old_head = self.list_meta(lid).head;
                self.arena[old_head.index()]
                    .links
                    .get_mut(level)
                    .expect("head is linked at this level")
                    .prev = Some(id);
                self.list_meta_mut(lid).head = id;
                LevelLink {
                    prev: None,
                    next: Some(old_head),
                    list: lid,
                }
            }
        };
        debug_assert_eq!(self.arena[id.index()].links.len(), level);
        self.arena[id.index()].links.push(link);
        let is_dummy = self.arena[id.index()]
            .entry
            .as_ref()
            .expect("spliced node is live")
            .dummy;
        let meta = self.list_meta_mut(lid);
        meta.len += 1;
        meta.dummies += usize::from(is_dummy);
        if meta.len == 2 {
            self.multi[level] += 1;
        }
    }

    /// Splices a node out of every list it is linked into, destroying
    /// lists that become empty.
    fn unlink_node(&mut self, id: NodeId) {
        let level_count = self.arena[id.index()].links.len();
        for level in 0..level_count {
            self.unlink_level(id, level, level == level_count - 1);
        }
        self.arena[id.index()].links.clear();
        self.pop_empty_top_levels();
    }

    /// Splices `id` out of the single list it belongs to at `level`,
    /// destroying the list if it becomes empty. `stops_here` says whether
    /// this list is the node's topmost one (its stopper count must drop).
    /// The node's link record at `level` is left stale; the caller clears or
    /// truncates the link vector afterwards.
    fn unlink_level(&mut self, id: NodeId, level: usize, stops_here: bool) {
        let link = *self.arena[id.index()]
            .links
            .get(level)
            .expect("level within link count");
        let is_dummy = self.arena[id.index()]
            .entry
            .as_ref()
            .expect("unlinked node is live")
            .dummy;
        if let Some(p) = link.prev {
            self.arena[p.index()]
                .links
                .get_mut(level)
                .expect("neighbour is linked at this level")
                .next = link.next;
        }
        if let Some(n) = link.next {
            self.arena[n.index()]
                .links
                .get_mut(level)
                .expect("neighbour is linked at this level")
                .prev = link.prev;
        }
        let meta = self.list_meta_mut(link.list);
        if stops_here {
            meta.stoppers -= 1;
        }
        meta.len -= 1;
        meta.dummies -= usize::from(is_dummy);
        let emptied = meta.len == 0;
        if meta.len == 1 {
            self.multi[level] -= 1;
        }
        if emptied {
            let prefix = self.list_meta(link.list).prefix;
            self.levels[level].remove(&prefix);
            self.free_list(link.list);
        } else {
            let meta = self.list_meta_mut(link.list);
            if meta.head == id {
                meta.head = link.next.expect("non-empty list has a successor");
            }
            if meta.tail == id {
                meta.tail = link.prev.expect("non-empty list has a predecessor");
            }
        }
    }

    /// Drops trailing levels whose prefix index became empty.
    fn pop_empty_top_levels(&mut self) {
        while matches!(self.levels.last(), Some(m) if m.is_empty()) {
            self.levels.pop();
            self.multi.pop();
        }
    }

    fn alloc_list(&mut self, meta: ListMeta) -> ListId {
        match self.free_lists.pop() {
            Some(raw) => {
                let lid = ListId(raw);
                self.lists[lid.index()] = Some(meta);
                lid
            }
            None => {
                let lid = ListId(self.lists.len() as u32);
                self.lists.push(Some(meta));
                lid
            }
        }
    }

    fn free_list(&mut self, lid: ListId) {
        self.lists[lid.index()] = None;
        self.free_lists.push(lid.0);
    }

    fn list_meta(&self, lid: ListId) -> &ListMeta {
        self.lists[lid.index()].as_ref().expect("list id is live")
    }

    fn list_meta_mut(&mut self, lid: ListId) -> &mut ListMeta {
        self.lists[lid.index()].as_mut().expect("list id is live")
    }

    /// Replaces the membership-vector bits of `id` from `from_level` upward
    /// with `new_bits`, keeping levels `1..from_level` unchanged, and
    /// relinks the node in every list. This is the primitive the
    /// self-adjusting algorithm uses to "move" a node between subgraphs.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id and
    /// [`SkipGraphError::HeightLimitExceeded`] if the resulting vector would
    /// be too long.
    pub fn set_membership_suffix<I>(
        &mut self,
        id: NodeId,
        from_level: usize,
        new_bits: I,
    ) -> Result<()>
    where
        I: IntoIterator<Item = Bit>,
    {
        if self.entry(id).is_none() {
            return Err(SkipGraphError::UnknownNode(id));
        }
        self.unlink_node(id);
        let result = {
            let entry = self.arena[id.index()]
                .entry
                .as_mut()
                .expect("checked live above");
            entry.mvec.replace_suffix(from_level, new_bits)
        };
        // Re-link regardless of whether the suffix replacement failed so
        // that the node is never left out of the lists.
        self.link_node(id);
        result
    }

    /// Applies a batch of membership-vector updates, rebuilding only the
    /// lists that actually change and relinking each affected list in one
    /// ordered splice pass.
    ///
    /// This is the differential twin of calling
    /// [`SkipGraph::set_membership_suffix`] once per node. The per-node
    /// primitive unlinks the node from *every* level and relinks it with a
    /// predecessor walk per level — Θ(vector length) splices and walks per
    /// node even when most bits are unchanged. The batch installer instead:
    ///
    /// 1. unlinks every node only from the levels at and above its
    ///    [`MembershipUpdate::from_level`] (the links below are untouched —
    ///    those lists keep the node, its neighbours, and their order);
    /// 2. groups the changed `(node, level)` pairs by `(level, new prefix)`
    ///    in a reusable scratch workspace;
    /// 3. rebuilds each affected list in a single ordered merge pass:
    ///    incoming nodes (sorted by key) are spliced into the surviving
    ///    chain while it is walked once, so untouched list segments are
    ///    reused in place rather than re-spliced.
    ///
    /// The work is therefore proportional to the number of changed
    /// `(node, level)` pairs plus the sizes of the lists they move into —
    /// not to the total link count of the touched nodes. The resulting
    /// structure is observably identical to the per-node install: every
    /// list holds the nodes sharing its prefix, in ascending key order (the
    /// differential property tests in `tests/arena_reference_agreement.rs`
    /// assert exactly this).
    ///
    /// Returns the number of changed `(node, level)` pairs installed.
    /// Entries whose new vector equals the current one are skipped. Each
    /// node may appear at most once in `updates`.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] (before any mutation) if an
    /// update names a dead node.
    pub fn apply_membership_batch(&mut self, updates: &[MembershipUpdate]) -> Result<usize> {
        let mut affected = Vec::new();
        self.apply_membership_batch_collecting(updates, &mut affected)
    }

    /// [`SkipGraph::apply_membership_batch`], additionally collecting the
    /// *affected lists*: every list whose membership — or whose members'
    /// next-level split pattern — this batch changed. That is, for each
    /// changed node, its old and new lists from `from_level` upward plus the
    /// (unchanged-membership) parent list at `from_level - 1`, whose runs
    /// changed because the node's bit at `from_level` did.
    ///
    /// Deduplication is epoch-stamp based (each list descriptor remembers
    /// the last batch that touched it), so collection costs O(1) per
    /// changed `(node, level)` pair with no hashing. `affected` is cleared
    /// first; in the rare case of a list freed and re-created within one
    /// batch a duplicate entry can appear, so order-sensitive consumers
    /// should sort + dedup.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] (before any mutation) if an
    /// update names a dead node.
    pub fn apply_membership_batch_collecting(
        &mut self,
        updates: &[MembershipUpdate],
        affected: &mut Vec<(usize, Prefix)>,
    ) -> Result<usize> {
        affected.clear();
        self.batch_epoch += 1;
        for update in updates {
            if self.entry(update.node).is_none() {
                return Err(SkipGraphError::UnknownNode(update.node));
            }
        }
        #[cfg(debug_assertions)]
        {
            let mut seen = std::collections::HashSet::new();
            for update in updates {
                debug_assert!(
                    seen.insert(update.node),
                    "node {} appears twice in one membership batch",
                    update.node
                );
            }
        }
        let mut scratch = std::mem::take(&mut self.batch);
        for (_, mut members) in scratch.groups.drain() {
            members.clear();
            scratch.spare.push(members);
        }

        // Phase 1: partial unlink, vector write, and grouping of the
        // changed (node, level) pairs by their target list.
        let mut touched = 0usize;
        for update in updates {
            let id = update.node;
            let old = self.entry(id).expect("validated above").mvec;
            let new = update.new_mvec;
            if old == new {
                continue;
            }
            let from_level = old.common_prefix_len(&new) + 1;
            debug_assert_eq!(
                update.from_level, from_level,
                "from_level of node {id} disagrees with the vector diff"
            );
            let (old_len, new_len) = (old.len(), new.len());
            // The parent list keeps the node, but the node's bit at
            // `from_level` changes, so the parent's run pattern does too.
            let parent_lid = self.arena[id.index()]
                .links
                .get(from_level - 1)
                .expect("node is linked below its first changed level")
                .list;
            self.stamp_list(parent_lid, affected);
            for level in from_level..=old_len {
                let lid = self.arena[id.index()]
                    .links
                    .get(level)
                    .expect("level within link count")
                    .list;
                self.stamp_list(lid, affected);
                self.unlink_level(id, level, level == old_len);
            }
            self.arena[id.index()].links.truncate(from_level);
            if old_len < from_level {
                // The old vector is a proper prefix of the new one: the node
                // stays in its old top list but no longer stops there.
                let lid = self.arena[id.index()]
                    .links
                    .get(old_len)
                    .expect("node is linked at its old top level")
                    .list;
                self.list_meta_mut(lid).stoppers -= 1;
            }
            if new_len < from_level {
                // The new vector is a proper prefix of the old one: the node
                // now stops at a list it is already linked into.
                let lid = self.arena[id.index()]
                    .links
                    .get(new_len)
                    .expect("node is linked at its new top level")
                    .list;
                self.list_meta_mut(lid).stoppers += 1;
            }
            self.arena[id.index()]
                .entry
                .as_mut()
                .expect("validated above")
                .mvec = new;
            for level in from_level..=new_len {
                scratch
                    .groups
                    .entry((level, new.prefix(level)))
                    .or_insert_with(|| scratch.spare.pop().unwrap_or_default())
                    .push(id);
            }
            touched += old_len.max(new_len) + 1 - from_level;
        }

        // Phase 2: splice each affected list once. Levels are processed in
        // ascending order so that every node's link records are appended
        // bottom-up; the (level, prefix) sort also makes the pass order
        // independent of hash-map iteration order.
        scratch.order.clear();
        scratch.order.extend(scratch.groups.keys().copied());
        scratch.order.sort_unstable();
        for &(level, prefix) in &scratch.order {
            match self.levels.get(level).and_then(|m| m.get(&prefix)).copied() {
                // A list that already lost members in phase 1 was stamped
                // there; stamping again keeps `affected` duplicate-free.
                Some(lid) => self.stamp_list(lid, affected),
                None => affected.push((level, prefix)),
            }
            let mut incoming = scratch
                .groups
                .remove(&(level, prefix))
                .expect("group was just enumerated");
            // Updates are usually supplied in ascending key order (the
            // transformation emits them that way), which makes every group
            // arrive sorted already; one linear check avoids re-sorting the
            // hot path and falls back for arbitrary callers.
            let key_of = |id: NodeId| {
                self.arena[id.index()]
                    .entry
                    .as_ref()
                    .expect("update target is live")
                    .key
            };
            if incoming.windows(2).any(|w| key_of(w[0]) > key_of(w[1])) {
                incoming.sort_unstable_by_key(|&id| key_of(id));
            }
            self.splice_group(level, prefix, &incoming);
            incoming.clear();
            scratch.spare.push(incoming);
            // Fault-injection site, deliberately *after* the splice: firing
            // mid-batch leaves the arena genuinely half-installed, the
            // failure mode the service-poisoning suites need to reproduce.
            crate::failpoint::hit(crate::failpoint::APPLY_SPLICE);
        }
        self.pop_empty_top_levels();
        self.batch = scratch;
        Ok(touched)
    }

    /// Marks `lid` as touched by the current batch epoch, recording its
    /// identity in `affected` the first time.
    fn stamp_list(&mut self, lid: ListId, affected: &mut Vec<(usize, Prefix)>) {
        let epoch = self.batch_epoch;
        let meta = self.list_meta_mut(lid);
        if meta.stamp != epoch {
            meta.stamp = epoch;
            affected.push((meta.level, meta.prefix));
        }
    }

    /// Records the lists `id` belongs to at levels ≥ `floor` into
    /// `affected`, deduplicated against everything already collected by the
    /// current batch-install epoch. The differential dummy GC uses this:
    /// destroying a node changes the run pattern of every list along its
    /// prefix path, which therefore needs the same balance re-check as the
    /// lists the install rebuilt.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn stamp_node_lists(
        &mut self,
        id: NodeId,
        floor: usize,
        affected: &mut Vec<(usize, Prefix)>,
    ) -> Result<()> {
        if self.entry(id).is_none() {
            return Err(SkipGraphError::UnknownNode(id));
        }
        let level_count = self.arena[id.index()].links.len();
        for level in floor..level_count {
            let lid = self.arena[id.index()]
                .links
                .get(level)
                .expect("level within link count")
                .list;
            self.stamp_list(lid, affected);
        }
        Ok(())
    }

    /// Inserts a whole batch of *dummy* nodes through the ordered-splice
    /// machinery of [`SkipGraph::apply_membership_batch`]: the new nodes'
    /// `(node, level)` memberships are grouped by target list and each
    /// affected list is relinked in one merge pass, instead of paying one
    /// full join walk per dummy as [`SkipGraph::insert_dummy`] does. The
    /// balance-repair reconciliation pushes all of a repair pass's genuinely
    /// new dummies through this entry point.
    ///
    /// Each group's merge starts from a cheaply-found predecessor of the
    /// group's first key (the key index at level 0, the standard
    /// walk-from-the-level-below at higher levels), so a small batch costs
    /// O(batch · height) expected — never a scan from each list head. The
    /// resulting structure is identical to inserting the dummies one by one
    /// in any order: every list holds the nodes sharing its prefix in
    /// ascending key order.
    ///
    /// Returns the new node ids, parallel to `dummies`.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] (before any mutation) if a
    /// key is already present in the graph or appears twice in the batch.
    pub fn insert_dummies_bulk(
        &mut self,
        dummies: &[(Key, MembershipVector)],
    ) -> Result<Vec<NodeId>> {
        for &(key, _) in dummies {
            if self.by_key.contains(key) {
                return Err(SkipGraphError::DuplicateKey(key));
            }
        }
        {
            // In-batch duplicates, via one sort instead of a quadratic scan.
            let mut keys: Vec<Key> = dummies.iter().map(|&(key, _)| key).collect();
            keys.sort_unstable();
            if let Some(window) = keys.windows(2).find(|w| w[0] == w[1]) {
                return Err(SkipGraphError::DuplicateKey(window[0]));
            }
        }
        let mut ids = Vec::with_capacity(dummies.len());
        for &(key, mvec) in dummies {
            ids.push(self.alloc_node(NodeEntry {
                key,
                mvec,
                dummy: true,
            }));
        }
        // Deliberately no batch_epoch bump: the lists rebuilt by the
        // enclosing epoch's install keep their valid "already collected"
        // stamps (bumping here made every later cluster of the epoch
        // re-append and re-scan them), and the lists this install creates
        // are stamped 0 below — collectable by a later GC pass, exactly
        // like a list born from a per-dummy insertion.
        let mut scratch = std::mem::take(&mut self.batch);
        for (_, mut members) in scratch.groups.drain() {
            members.clear();
            scratch.spare.push(members);
        }
        for (i, &(_, mvec)) in dummies.iter().enumerate() {
            for level in 0..=mvec.len() {
                scratch
                    .groups
                    .entry((level, mvec.prefix(level)))
                    .or_insert_with(|| scratch.spare.pop().unwrap_or_default())
                    .push(ids[i]);
            }
        }
        // Ascending level order: a node's link records are appended
        // bottom-up, and the predecessor walk for a level-`l` group relies
        // on the batch already being linked at `l - 1`.
        scratch.order.clear();
        scratch.order.extend(scratch.groups.keys().copied());
        scratch.order.sort_unstable();
        for &(level, prefix) in &scratch.order {
            let mut incoming = scratch
                .groups
                .remove(&(level, prefix))
                .expect("group was just enumerated");
            {
                let key_of = |id: NodeId| {
                    self.arena[id.index()]
                        .entry
                        .as_ref()
                        .expect("batch member is live")
                        .key
                };
                if incoming.windows(2).any(|w| key_of(w[0]) > key_of(w[1])) {
                    incoming.sort_unstable_by_key(|&id| key_of(id));
                }
            }
            let first = incoming[0];
            let first_key = self.arena[first.index()]
                .entry
                .as_ref()
                .expect("batch member is live")
                .key;
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, HashMap::default);
                self.multi.resize(level + 1, 0);
            }
            match self.levels[level].get(&prefix).copied() {
                None => self.create_list_from(level, prefix, &incoming, 0),
                Some(lid) => {
                    // Dense group (a meaningful fraction of the target
                    // list): one ordered merge walk over the surviving
                    // chain. Sparse group: the walk between far-apart keys
                    // would dominate (dummy keys spread across the whole
                    // key space make the level-0 merge an O(n) scan), so
                    // seek each node's predecessor directly instead — the
                    // key index at level 0, the walk-from-the-level-below
                    // everywhere else.
                    if incoming.len() * 8 >= self.list_meta(lid).len {
                        // The key index already holds the whole batch, but
                        // the group's first member is the batch's smallest
                        // key in this list, so its predecessor is an
                        // existing (linked) node.
                        let start_pred = if level == 0 {
                            self.predecessor_by_key(first_key)
                        } else {
                            self.link_predecessor(first, first_key, level, lid)
                        };
                        self.merge_into_list(level, lid, &incoming, start_pred);
                    } else {
                        for &id in &incoming {
                            let key = self.arena[id.index()]
                                .entry
                                .as_ref()
                                .expect("batch member is live")
                                .key;
                            let pred = if level == 0 {
                                self.predecessor_by_key(key)
                            } else {
                                self.link_predecessor(id, key, level, lid)
                            };
                            self.splice_in(id, level, lid, pred);
                            if self.entry(id).expect("live").mvec.len() == level {
                                self.list_meta_mut(lid).stoppers += 1;
                            }
                        }
                    }
                }
            }
            incoming.clear();
            scratch.spare.push(incoming);
        }
        self.batch = scratch;
        Ok(ids)
    }

    /// Splices `incoming` (ascending key order, all sharing `prefix` at
    /// `level`) into the list identified by `(level, prefix)`, creating the
    /// list if it does not exist. One ordered merge pass: the surviving
    /// chain is walked at most once regardless of how many nodes arrive.
    fn splice_group(&mut self, level: usize, prefix: Prefix, incoming: &[NodeId]) {
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, HashMap::default);
            self.multi.resize(level + 1, 0);
        }
        match self.levels[level].get(&prefix).copied() {
            None => self.create_list_from(level, prefix, incoming, self.batch_epoch),
            Some(lid) => self.merge_into_list(level, lid, incoming, None),
        }
    }

    /// Materialises a brand-new list from `incoming` (ascending key order):
    /// the incoming chain *is* the list. `stamp` seeds the affected-list
    /// deduplication: the membership-batch installer passes the current
    /// epoch (it records the new list in `affected` itself), the bulk dummy
    /// installer passes 0 ("never collected") so a later GC pass can still
    /// stamp and re-check the list — exactly like a list born from a
    /// per-dummy insertion.
    fn create_list_from(&mut self, level: usize, prefix: Prefix, incoming: &[NodeId], stamp: u64) {
        let (mut stoppers, mut dummies) = (0usize, 0usize);
        for &id in incoming {
            let entry = self.entry(id).expect("live");
            stoppers += usize::from(entry.mvec.len() == level);
            dummies += usize::from(entry.dummy);
        }
        let lid = self.alloc_list(ListMeta {
            prefix,
            level,
            head: incoming[0],
            tail: *incoming.last().expect("group is non-empty"),
            len: incoming.len(),
            stamp,
            stoppers,
            dummies,
        });
        self.levels[level].insert(prefix, lid);
        for (i, &id) in incoming.iter().enumerate() {
            debug_assert_eq!(self.arena[id.index()].links.len(), level);
            self.arena[id.index()].links.push(LevelLink {
                prev: i.checked_sub(1).map(|p| incoming[p]),
                next: incoming.get(i + 1).copied(),
                list: lid,
            });
        }
        if incoming.len() >= 2 {
            self.multi[level] += 1;
        }
    }

    /// Splices `incoming` (ascending key order) into the existing list
    /// `lid` in one ordered merge pass, walking the surviving chain from
    /// `start_pred` (a member known to precede every incoming key; `None`
    /// starts at the head). The bulk dummy installer seeds `start_pred`
    /// with a cheaply-found predecessor so a small batch does not pay a
    /// walk from the list head.
    fn merge_into_list(
        &mut self,
        level: usize,
        lid: ListId,
        incoming: &[NodeId],
        start_pred: Option<NodeId>,
    ) {
        let mut pred = start_pred;
        let mut cursor = match start_pred {
            Some(p) => self.arena[p.index()]
                .links
                .get(level)
                .expect("start predecessor is linked at this level")
                .next,
            None => Some(self.list_meta(lid).head),
        };
        for &id in incoming {
            let key = self.entry(id).expect("update target is live").key;
            while let Some(member) = cursor {
                if self.arena[member.index()]
                    .entry
                    .as_ref()
                    .expect("list member is live")
                    .key
                    < key
                {
                    pred = Some(member);
                    cursor = self.arena[member.index()]
                        .links
                        .get(level)
                        .and_then(|l| l.next);
                } else {
                    break;
                }
            }
            self.splice_in(id, level, lid, pred);
            pred = Some(id);
            if self.entry(id).expect("live").mvec.len() == level {
                self.list_meta_mut(lid).stoppers += 1;
            }
        }
    }

    /// Replaces the node's entire membership vector.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn set_membership_vector(&mut self, id: NodeId, mvec: MembershipVector) -> Result<()> {
        if self.entry(id).is_none() {
            return Err(SkipGraphError::UnknownNode(id));
        }
        self.unlink_node(id);
        self.arena[id.index()]
            .entry
            .as_mut()
            .expect("checked live above")
            .mvec = mvec;
        self.link_node(id);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    fn entry(&self, id: NodeId) -> Option<&NodeEntry> {
        self.arena.get(id.index()).and_then(|s| s.entry.as_ref())
    }

    /// Number of live nodes (including dummy nodes).
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Number of live dummy nodes (maintained incrementally; O(1)).
    pub fn dummy_count(&self) -> usize {
        self.dummies
    }

    /// Returns the node entry for a live id.
    pub fn node(&self, id: NodeId) -> Option<&NodeEntry> {
        self.entry(id)
    }

    /// Returns the id of the node holding `key`.
    pub fn node_by_key(&self, key: Key) -> Option<NodeId> {
        self.by_key.get(key)
    }

    /// The node with the largest key strictly below `key` (its left
    /// neighbour in the base list, whether or not `key` itself is present).
    pub fn predecessor_by_key(&self, key: Key) -> Option<NodeId> {
        self.by_key.predecessor(key)
    }

    /// The node with the smallest key strictly above `key`.
    pub fn successor_by_key(&self, key: Key) -> Option<NodeId> {
        self.by_key.successor(key)
    }

    /// The key of a live node.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn key_of(&self, id: NodeId) -> Result<Key> {
        self.entry(id)
            .map(|e| e.key)
            .ok_or(SkipGraphError::UnknownNode(id))
    }

    /// The membership vector of a live node.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn mvec_of(&self, id: NodeId) -> Result<MembershipVector> {
        self.entry(id)
            .map(|e| e.mvec)
            .ok_or(SkipGraphError::UnknownNode(id))
    }

    /// Iterates over all live node ids in ascending key order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.by_key.iter().map(|(_, id)| id)
    }

    /// Iterates over all live keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.by_key.iter().map(|(key, _)| key)
    }

    /// The height of the skip graph: the smallest `H` such that every node
    /// is the only member of its list at level `H`. An empty or singleton
    /// graph has height 0. Computed from the per-level multi-member list
    /// counters, so it costs O(height), not a sweep of every list.
    pub fn height(&self) -> usize {
        for (level, &multi) in self.multi.iter().enumerate() {
            if multi == 0 {
                return level;
            }
        }
        self.levels.len()
    }

    /// The largest level index for which any list exists.
    pub fn max_level(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    // ------------------------------------------------------------------
    // List queries
    // ------------------------------------------------------------------

    /// Borrowing iterator over the members (in ascending key order) of the
    /// list at `level` identified by `prefix`. Empty if no such list
    /// exists. Allocation-free.
    pub fn list_iter(&self, level: usize, prefix: Prefix) -> ListIter<'_> {
        match self.levels.get(level).and_then(|m| m.get(&prefix)) {
            Some(&lid) => self.list_id_iter(lid),
            None => ListIter {
                graph: self,
                cursor: None,
                level: 0,
                remaining: 0,
            },
        }
    }

    fn list_id_iter(&self, lid: ListId) -> ListIter<'_> {
        let meta = self.list_meta(lid);
        ListIter {
            graph: self,
            cursor: Some(meta.head),
            level: meta.level,
            remaining: meta.len,
        }
    }

    /// Borrowing iterator over the members of the list `id` belongs to at
    /// `level`, in ascending key order. For levels above the node's vector
    /// length the node is singleton, so only `id` itself is yielded.
    /// Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn list_of_iter(&self, id: NodeId, level: usize) -> Result<ListIter<'_>> {
        let entry = self.entry(id).ok_or(SkipGraphError::UnknownNode(id))?;
        if level > entry.mvec.len() {
            // Conceptual singleton: the cursor starts at `id` and the walk
            // stops immediately because the node has no link at `level`.
            return Ok(ListIter {
                graph: self,
                cursor: Some(id),
                level,
                remaining: 1,
            });
        }
        let lid = self.arena[id.index()]
            .links
            .get(level)
            .expect("live node is linked at every level up to its length")
            .list;
        Ok(self.list_id_iter(lid))
    }

    /// Iterates over every live list as `(level, prefix, head, len)`
    /// tuples, in arena (allocation) order — a straight slab walk, with no
    /// per-level hash-map iteration. Used by whole-graph sweeps like the
    /// a-balance checker, which walk the chains themselves via
    /// [`SkipGraph::entry_and_next`].
    pub(crate) fn all_lists_iter(
        &self,
    ) -> impl Iterator<Item = (usize, Prefix, NodeId, usize)> + '_ {
        self.lists.iter().filter_map(move |slot| {
            slot.as_ref()
                .map(|meta| (meta.level, meta.prefix, meta.head, meta.len))
        })
    }

    /// Head and length of the list at `(level, prefix)`, if it exists.
    /// Like [`SkipGraph::list_head`], additionally reporting the list's
    /// cached dummy-member count.
    pub(crate) fn list_head_with_dummies(
        &self,
        level: usize,
        prefix: Prefix,
    ) -> Option<(NodeId, usize, usize)> {
        let lid = self.levels.get(level)?.get(&prefix)?;
        let meta = self.list_meta(*lid);
        Some((meta.head, meta.len, meta.dummies))
    }

    pub(crate) fn list_head(&self, level: usize, prefix: Prefix) -> Option<(NodeId, usize)> {
        let &lid = self.levels.get(level)?.get(&prefix)?;
        let meta = self.list_meta(lid);
        Some((meta.head, meta.len))
    }

    /// One fused arena read for chain walks: the node's entry together with
    /// its successor at `level`. Scans that previously paired a `ListIter`
    /// step with a separate [`SkipGraph::node`] lookup touch each slot once.
    pub(crate) fn entry_and_next(&self, id: NodeId, level: usize) -> (&NodeEntry, Option<NodeId>) {
        let slot = &self.arena[id.index()];
        (
            slot.entry.as_ref().expect("list member is live"),
            slot.links.get(level).and_then(|l| l.next),
        )
    }

    /// Iterates over all lists at `level` as `(prefix, members)` pairs, in
    /// unspecified order; members are yielded in ascending key order.
    /// Allocation-free.
    pub fn lists_at_level_iter(
        &self,
        level: usize,
    ) -> impl Iterator<Item = (Prefix, ListIter<'_>)> + '_ {
        self.levels
            .get(level)
            .into_iter()
            .flat_map(move |map| map.iter().map(move |(p, &lid)| (*p, self.list_id_iter(lid))))
    }

    /// Members (in ascending key order) of the list at `level` identified by
    /// `prefix`. Convenience wrapper around [`SkipGraph::list_iter`] that
    /// allocates; hot paths should use the iterator.
    pub fn list_members(&self, level: usize, prefix: Prefix) -> Vec<NodeId> {
        self.list_iter(level, prefix).collect()
    }

    /// Members of the list identified by a [`ListRef`].
    pub fn list(&self, list: ListRef) -> Vec<NodeId> {
        self.list_members(list.level, list.prefix)
    }

    /// Members of the list that `id` belongs to at `level`, in ascending key
    /// order. Convenience wrapper around [`SkipGraph::list_of_iter`] that
    /// allocates; hot paths should use the iterator.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn list_of(&self, id: NodeId, level: usize) -> Result<Vec<NodeId>> {
        Ok(self.list_of_iter(id, level)?.collect())
    }

    /// Size of the list that `id` belongs to at `level`. O(1): reads the
    /// list's cached length.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn list_size(&self, id: NodeId, level: usize) -> Result<usize> {
        let entry = self.entry(id).ok_or(SkipGraphError::UnknownNode(id))?;
        if level > entry.mvec.len() {
            return Ok(1);
        }
        let lid = self.arena[id.index()]
            .links
            .get(level)
            .expect("live node is linked at every level up to its length")
            .list;
        Ok(self.list_meta(lid).len)
    }

    /// All lists at `level`, as `(prefix, members)` pairs. Pairs are
    /// returned in an unspecified order; members are in ascending key order.
    /// Convenience wrapper around [`SkipGraph::lists_at_level_iter`] that
    /// allocates.
    pub fn lists_at_level(&self, level: usize) -> Vec<(Prefix, Vec<NodeId>)> {
        self.lists_at_level_iter(level)
            .map(|(p, iter)| (p, iter.collect()))
            .collect()
    }

    /// Left and right neighbours of `id` in its list at `level` (the
    /// doubly-linked-list pointers of the distributed structure). O(1):
    /// two pointer reads from the node's link record — no hashing, no tree
    /// walk, no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn neighbors(&self, id: NodeId, level: usize) -> Result<(Option<NodeId>, Option<NodeId>)> {
        let slot = self
            .arena
            .get(id.index())
            .filter(|s| s.entry.is_some())
            .ok_or(SkipGraphError::UnknownNode(id))?;
        Ok(match slot.links.get(level) {
            Some(link) => (link.prev, link.next),
            // Above the node's vector length it is conceptually singleton.
            None => (None, None),
        })
    }

    /// The highest level at which `u` and `v` share a linked list (the
    /// paper's `α` for a communication request), i.e. the length of the
    /// longest common prefix of their membership vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] if either id is dead.
    pub fn common_level(&self, u: NodeId, v: NodeId) -> Result<usize> {
        let eu = self.entry(u).ok_or(SkipGraphError::UnknownNode(u))?;
        let ev = self.entry(v).ok_or(SkipGraphError::UnknownNode(v))?;
        Ok(eu.mvec.common_prefix_len(&ev.mvec))
    }

    /// The degree of a node: the number of *distinct* neighbours over all
    /// levels. Skip graphs guarantee `O(log n)` degree.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn degree(&self, id: NodeId) -> Result<usize> {
        let entry = self.entry(id).ok_or(SkipGraphError::UnknownNode(id))?;
        let mut distinct = std::collections::HashSet::new();
        for level in 0..=entry.mvec.len() {
            let (l, r) = self.neighbors(id, level)?;
            if let Some(l) = l {
                distinct.insert(l);
            }
            if let Some(r) = r {
                distinct.insert(r);
            }
        }
        Ok(distinct.len())
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Checks the structural invariants of the skip graph:
    ///
    /// 1. every live node appears exactly once in the base list;
    /// 2. every list's chain is consistent: ascending keys, symmetric
    ///    `prev`/`next` pointers, cached head/tail/length correct;
    /// 3. list membership recorded in the links matches the nodes'
    ///    membership vectors, and every list refines its parent list;
    /// 4. the per-level multi-member counters match the lists.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::InvariantViolated`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<()> {
        // 1. base list contains every live node.
        let base_len = self
            .levels
            .first()
            .and_then(|m| m.get(&Prefix::root()))
            .map(|&lid| self.list_meta(lid).len)
            .unwrap_or(0);
        if base_len != self.by_key.len() {
            return Err(SkipGraphError::InvariantViolated(format!(
                "base list has {} members but {} nodes are live",
                base_len,
                self.by_key.len()
            )));
        }
        // 2/3. chain consistency + prefix consistency + refinement.
        for (level, map) in self.levels.iter().enumerate() {
            let mut multi_seen = 0usize;
            for (prefix, &lid) in map {
                if prefix.level() != level {
                    return Err(SkipGraphError::InvariantViolated(format!(
                        "prefix {prefix} stored at level {level}"
                    )));
                }
                self.validate_list_inner(level, *prefix, lid)?;
                if self.list_meta(lid).len >= 2 {
                    multi_seen += 1;
                }
            }
            if self.multi.get(level).copied().unwrap_or(0) != multi_seen {
                return Err(SkipGraphError::InvariantViolated(format!(
                    "multi-member counter at level {level} is stale"
                )));
            }
        }
        // 4. the two halves of the key index agree.
        if self.by_key.map.len() != self.by_key.tree.len() {
            return Err(SkipGraphError::InvariantViolated(format!(
                "key index halves disagree: {} hashed, {} ordered",
                self.by_key.map.len(),
                self.by_key.tree.len()
            )));
        }
        for (key, id) in self.by_key.iter() {
            if self.by_key.get(key) != Some(id) {
                return Err(SkipGraphError::InvariantViolated(format!(
                    "key index halves disagree on key {key}"
                )));
            }
        }
        // 5. every node is linked at every level up to its vector length.
        for (key, id) in self.by_key.iter() {
            let entry = self.entry(id).ok_or_else(|| {
                SkipGraphError::InvariantViolated(format!("key {key} maps to dead node {id}"))
            })?;
            if entry.key != key {
                return Err(SkipGraphError::InvariantViolated(format!(
                    "node {id} stored under key {key} but has key {}",
                    entry.key
                )));
            }
            if self.arena[id.index()].links.len() != entry.mvec.len() + 1 {
                return Err(SkipGraphError::InvariantViolated(format!(
                    "node {id} missing link records (has {}, vector length {})",
                    self.arena[id.index()].links.len(),
                    entry.mvec.len()
                )));
            }
            for level in 0..=entry.mvec.len() {
                let prefix = entry.mvec.prefix(level);
                let link = self.arena[id.index()]
                    .links
                    .get(level)
                    .expect("length checked above");
                if self.list_meta(link.list).prefix != prefix {
                    return Err(SkipGraphError::InvariantViolated(format!(
                        "node {id} missing from its list at level {level}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Validates the invariants of **one** list: chain consistency
    /// (symmetric `prev`/`next`, ascending keys, cached head/tail/length
    /// correct), prefix membership, refinement against the parent list,
    /// and the cached stopper/dummy counters — the per-list slice of
    /// [`SkipGraph::validate`], exposed so incremental auditors (the
    /// `dsg::service` tiered auditor) can re-check just the lists an epoch
    /// touched in time proportional to those lists instead of the whole
    /// structure.
    ///
    /// A `(level, prefix)` that names no live list validates vacuously:
    /// affected-list sets legitimately outlive the lists they name (a
    /// repair can empty and free a list after the install recorded it).
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::InvariantViolated`] describing the first
    /// violation found.
    pub fn validate_list(&self, level: usize, prefix: Prefix) -> Result<()> {
        match self.levels.get(level).and_then(|m| m.get(&prefix)) {
            Some(&lid) => self.validate_list_inner(level, prefix, lid),
            None => Ok(()),
        }
    }

    /// The per-list body shared by [`SkipGraph::validate`] (every list) and
    /// [`SkipGraph::validate_list`] (one list).
    fn validate_list_inner(&self, level: usize, prefix: Prefix, lid: ListId) -> Result<()> {
        {
            let prefix = &prefix;
            {
                let meta = self.lists[lid.index()].as_ref().ok_or_else(|| {
                    SkipGraphError::InvariantViolated(format!(
                        "freed list recorded for prefix {prefix} at level {level}"
                    ))
                })?;
                if meta.prefix != *prefix || meta.level != level {
                    return Err(SkipGraphError::InvariantViolated(format!(
                        "list identity mismatch for prefix {prefix} at level {level}"
                    )));
                }
                let mut count = 0usize;
                let mut stoppers_seen = 0usize;
                let mut dummies_seen = 0usize;
                let mut previous: Option<NodeId> = None;
                let mut cursor = Some(meta.head);
                while let Some(id) = cursor {
                    let entry = self.entry(id).ok_or_else(|| {
                        SkipGraphError::InvariantViolated(format!(
                            "dead node {id} recorded in list {prefix} at level {level}"
                        ))
                    })?;
                    let link = self.arena[id.index()].links.get(level).ok_or_else(|| {
                        SkipGraphError::InvariantViolated(format!(
                            "node {id} in list {prefix} at level {level} has no link record"
                        ))
                    })?;
                    if link.list != lid {
                        return Err(SkipGraphError::InvariantViolated(format!(
                            "node {id} links to a different list than {prefix} at level {level}"
                        )));
                    }
                    if link.prev != previous {
                        return Err(SkipGraphError::InvariantViolated(format!(
                            "asymmetric prev pointer at node {id} in list {prefix} at level {level}"
                        )));
                    }
                    if let Some(p) = previous {
                        let pk = self.entry(p).expect("checked above").key;
                        if pk >= entry.key {
                            return Err(SkipGraphError::InvariantViolated(format!(
                                "keys out of order in list {prefix} at level {level}: {pk} before {}",
                                entry.key
                            )));
                        }
                    }
                    if entry.mvec.prefix(level) != *prefix {
                        return Err(SkipGraphError::InvariantViolated(format!(
                            "node {id} with vector {} is recorded in list {prefix} at level {level}",
                            entry.mvec
                        )));
                    }
                    if level >= 1 {
                        // Refinement: O(1) membership test via the link
                        // record of the level below.
                        let parent_prefix = prefix.parent().expect("level >= 1 has a parent");
                        let in_parent = self.arena[id.index()]
                            .links
                            .get(level - 1)
                            .map(|l| self.list_meta(l.list).prefix == parent_prefix)
                            .unwrap_or(false);
                        if !in_parent {
                            return Err(SkipGraphError::InvariantViolated(format!(
                                "node {id} appears in list {prefix} at level {level} but not in its parent list"
                            )));
                        }
                    }
                    count += 1;
                    if entry.mvec.len() == level {
                        stoppers_seen += 1;
                    }
                    if entry.dummy {
                        dummies_seen += 1;
                    }
                    previous = Some(id);
                    if count > meta.len {
                        return Err(SkipGraphError::InvariantViolated(format!(
                            "list {prefix} at level {level} longer than its cached length {}",
                            meta.len
                        )));
                    }
                    cursor = link.next;
                }
                if count != meta.len {
                    return Err(SkipGraphError::InvariantViolated(format!(
                        "list {prefix} at level {level} has {count} members but cached length {}",
                        meta.len
                    )));
                }
                if previous != Some(meta.tail) {
                    return Err(SkipGraphError::InvariantViolated(format!(
                        "cached tail of list {prefix} at level {level} is stale"
                    )));
                }
                if stoppers_seen != meta.stoppers {
                    return Err(SkipGraphError::InvariantViolated(format!(
                        "stopper counter of list {prefix} at level {level} is stale \
                         ({} cached, {stoppers_seen} found)",
                        meta.stoppers
                    )));
                }
                if dummies_seen != meta.dummies {
                    return Err(SkipGraphError::InvariantViolated(format!(
                        "dummy counter of list {prefix} at level {level} is stale \
                         ({} cached, {dummies_seen} found)",
                        meta.dummies
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Borrowing, allocation-free iterator over the members of one linked list
/// in ascending key order. Created by [`SkipGraph::list_iter`],
/// [`SkipGraph::list_of_iter`] and [`SkipGraph::lists_at_level_iter`].
#[derive(Debug, Clone)]
pub struct ListIter<'g> {
    graph: &'g SkipGraph,
    cursor: Option<NodeId>,
    level: usize,
    remaining: usize,
}

impl Iterator for ListIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.cursor?;
        self.cursor = self.graph.arena[id.index()]
            .links
            .get(self.level)
            .and_then(|l| l.next);
        self.remaining = self.remaining.saturating_sub(1);
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ListIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Direct edge-case coverage for the ordered half of [`KeyIndex`]
    /// (predecessor/successor windows), previously exercised only through
    /// full engine runs.
    #[test]
    fn key_index_ordered_queries_cover_the_edges() {
        let id = |raw: u32| NodeId::from_raw(raw);
        let mut index = KeyIndex::default();

        // Empty window: no predecessor or successor anywhere.
        assert!(index.is_empty());
        assert_eq!(index.predecessor(Key::new(0)), None);
        assert_eq!(index.predecessor(Key::new(u64::MAX)), None);
        assert_eq!(index.successor(Key::new(0)), None);
        assert_eq!(index.successor(Key::new(u64::MAX)), None);

        // Key-space boundaries: entries at 0 and u64::MAX. Both queries are
        // strict, so the extremes have no predecessor/successor themselves.
        index.insert(Key::new(0), id(1));
        index.insert(Key::new(u64::MAX), id(2));
        assert_eq!(index.predecessor(Key::new(0)), None);
        assert_eq!(index.successor(Key::new(u64::MAX)), None);
        assert_eq!(index.predecessor(Key::new(u64::MAX)), Some(id(1)));
        assert_eq!(index.successor(Key::new(0)), Some(id(2)));
        assert_eq!(index.predecessor(Key::new(1)), Some(id(1)));
        assert_eq!(index.successor(Key::new(u64::MAX - 1)), Some(id(2)));

        // Fully occupied window: a dense run of keys — every interior probe
        // resolves to its immediate neighbours, and both index halves stay
        // in lockstep with removals.
        for k in 10..=20u64 {
            index.insert(Key::new(k), id(k as u32));
        }
        assert_eq!(index.len(), 13);
        for k in 11..=19u64 {
            assert!(index.contains(Key::new(k)));
            assert_eq!(index.predecessor(Key::new(k)), Some(id(k as u32 - 1)));
            assert_eq!(index.successor(Key::new(k)), Some(id(k as u32 + 1)));
        }
        // Probing between the dense run and the extremes.
        assert_eq!(index.predecessor(Key::new(10)), Some(id(1)));
        assert_eq!(index.successor(Key::new(20)), Some(id(2)));

        // Removal empties both halves consistently; ascending iteration
        // reflects exactly the survivors.
        index.remove(Key::new(15));
        assert!(!index.contains(Key::new(15)));
        assert_eq!(index.predecessor(Key::new(16)), Some(id(14)));
        assert_eq!(index.successor(Key::new(14)), Some(id(16)));
        // Removing an absent key is a no-op.
        index.remove(Key::new(15));
        let keys: Vec<u64> = index.iter().map(|(k, _)| k.value()).collect();
        assert_eq!(keys.first(), Some(&0));
        assert_eq!(keys.last(), Some(&u64::MAX));
        assert_eq!(keys.len(), index.len());
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "ascending iteration");
    }

    /// Builds the 6-node skip graph of Figure 1 of the paper.
    ///
    /// Level-1 0-sublist = {A, J, M}, 1-sublist = {G, R, W};
    /// level-2 lists: {A, J} (00), {M} (01), {G, W} (10), {R} (11).
    pub(crate) fn figure1_graph() -> SkipGraph {
        let members = [
            (1u64, "00"),  // A
            (7, "10"),     // G
            (10, "00"),    // J
            (13, "01"),    // M
            (18, "11"),    // R
            (23, "10"),    // W
        ];
        SkipGraph::from_members(
            members
                .iter()
                .map(|(k, v)| (Key::new(*k), MembershipVector::parse(v).unwrap())),
        )
        .unwrap()
    }

    #[test]
    fn figure1_structure_matches_paper() {
        let g = figure1_graph();
        assert_eq!(g.len(), 6);
        g.validate().unwrap();

        let a = g.node_by_key(Key::new(1)).unwrap();
        let m = g.node_by_key(Key::new(13)).unwrap();
        let gg = g.node_by_key(Key::new(7)).unwrap();
        let w = g.node_by_key(Key::new(23)).unwrap();

        // Level-1 list containing A is {A, J, M}.
        let list = g.list_of(a, 1).unwrap();
        let keys: Vec<u64> = list.iter().map(|id| g.key_of(*id).unwrap().value()).collect();
        assert_eq!(keys, vec![1, 10, 13]);

        // The highest common level for A and M is 1 (as stated in §IV-C).
        assert_eq!(g.common_level(a, m).unwrap(), 1);

        // The 10-subgraph contains exactly G and W (as stated in §III).
        let p10 = Prefix::root().child(Bit::One).child(Bit::Zero);
        let sub: Vec<u64> = g
            .list_members(2, p10)
            .iter()
            .map(|id| g.key_of(*id).unwrap().value())
            .collect();
        assert_eq!(sub, vec![7, 23]);
        assert_eq!(g.common_level(gg, w).unwrap(), 2);
    }

    #[test]
    fn base_list_is_sorted_by_key() {
        let g = figure1_graph();
        let keys: Vec<u64> = g.keys().map(|k| k.value()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn neighbors_follow_key_order_within_lists() {
        let g = figure1_graph();
        let j = g.node_by_key(Key::new(10)).unwrap();
        // Base level: J's neighbours are G (7) and M (13).
        let (l, r) = g.neighbors(j, 0).unwrap();
        assert_eq!(g.key_of(l.unwrap()).unwrap().value(), 7);
        assert_eq!(g.key_of(r.unwrap()).unwrap().value(), 13);
        // Level 1 (list {A, J, M}): neighbours are A and M.
        let (l, r) = g.neighbors(j, 1).unwrap();
        assert_eq!(g.key_of(l.unwrap()).unwrap().value(), 1);
        assert_eq!(g.key_of(r.unwrap()).unwrap().value(), 13);
        // Level 2 (list {A, J}): only left neighbour A.
        let (l, r) = g.neighbors(j, 2).unwrap();
        assert_eq!(g.key_of(l.unwrap()).unwrap().value(), 1);
        assert_eq!(r, None);
    }

    #[test]
    fn height_of_figure1_is_three_levels_of_splitting() {
        let g = figure1_graph();
        // Lists at level 2 are {A,J} and {G,W}, which still have 2 members,
        // so the height (first all-singleton level) is 3.
        assert_eq!(g.height(), 3);
    }

    #[test]
    fn insert_duplicate_key_fails() {
        let mut g = figure1_graph();
        let err = g.insert(Key::new(13), MembershipVector::empty()).unwrap_err();
        assert_eq!(err, SkipGraphError::DuplicateKey(Key::new(13)));
    }

    #[test]
    fn remove_then_reinsert_reuses_slots() {
        let mut g = figure1_graph();
        let before = g.len();
        let removed = g.remove_key(Key::new(13)).unwrap();
        assert_eq!(removed.key(), Key::new(13));
        assert_eq!(g.len(), before - 1);
        g.validate().unwrap();
        g.insert(Key::new(13), MembershipVector::parse("01").unwrap())
            .unwrap();
        assert_eq!(g.len(), before);
        g.validate().unwrap();
    }

    #[test]
    fn random_construction_is_valid_and_logarithmic() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = SkipGraph::random((0..256).map(Key::new), &mut rng).unwrap();
        g.validate().unwrap();
        assert_eq!(g.len(), 256);
        // With random membership vectors the height is O(log n) w.h.p.; use
        // a generous constant.
        assert!(g.height() <= 4 * 8, "height {} too large", g.height());
        // Degree is O(log n) as well.
        for id in g.node_ids() {
            assert!(g.degree(id).unwrap() <= 4 * 8);
        }
    }

    #[test]
    fn set_membership_suffix_moves_node_between_subgraphs() {
        let mut g = figure1_graph();
        let m = g.node_by_key(Key::new(13)).unwrap();
        // Move M from the 01-subgraph to the 00-subgraph (joining A and J).
        g.set_membership_suffix(m, 2, [Bit::Zero]).unwrap();
        g.validate().unwrap();
        let a = g.node_by_key(Key::new(1)).unwrap();
        assert_eq!(g.common_level(a, m).unwrap(), 2);
        let list = g.list_of(m, 2).unwrap();
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn dummy_nodes_are_flagged_and_counted() {
        let mut g = figure1_graph();
        g.insert_dummy(Key::new(14), MembershipVector::parse("01").unwrap())
            .unwrap();
        assert_eq!(g.dummy_count(), 1);
        assert_eq!(g.len(), 7);
        g.validate().unwrap();
        g.remove_key(Key::new(14)).unwrap();
        assert_eq!(g.dummy_count(), 0);
    }

    #[test]
    fn unknown_ids_are_reported() {
        let g = figure1_graph();
        let bogus = NodeId::from_raw(999);
        assert!(matches!(
            g.key_of(bogus),
            Err(SkipGraphError::UnknownNode(_))
        ));
        assert!(matches!(
            g.neighbors(bogus, 0),
            Err(SkipGraphError::UnknownNode(_))
        ));
        assert!(matches!(
            g.list_of_iter(bogus, 0),
            Err(SkipGraphError::UnknownNode(_))
        ));
        assert!(matches!(
            g.list_size(bogus, 0),
            Err(SkipGraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn common_level_for_identical_vectors_is_full_length() {
        let mut g = SkipGraph::new();
        let a = g.insert(Key::new(1), MembershipVector::parse("11").unwrap()).unwrap();
        let b = g.insert(Key::new(2), MembershipVector::parse("11").unwrap()).unwrap();
        assert_eq!(g.common_level(a, b).unwrap(), 2);
        assert_eq!(g.height(), 3);
    }

    #[test]
    fn iterators_agree_with_vec_queries() {
        let g = figure1_graph();
        for level in 0..=g.max_level() {
            let mut pairs = g.lists_at_level(level);
            pairs.sort_by_key(|(p, _)| p.to_string());
            let mut iter_pairs: Vec<(Prefix, Vec<NodeId>)> = g
                .lists_at_level_iter(level)
                .map(|(p, it)| (p, it.collect()))
                .collect();
            iter_pairs.sort_by_key(|(p, _)| p.to_string());
            assert_eq!(pairs, iter_pairs);
            for (prefix, members) in pairs {
                let from_iter: Vec<NodeId> = g.list_iter(level, prefix).collect();
                assert_eq!(members, from_iter);
                assert_eq!(g.list_iter(level, prefix).len(), members.len());
            }
        }
        for id in g.node_ids() {
            let top = g.mvec_of(id).unwrap().len();
            for level in 0..=top + 2 {
                let vec_list = g.list_of(id, level).unwrap();
                let iter_list: Vec<NodeId> = g.list_of_iter(id, level).unwrap().collect();
                assert_eq!(vec_list, iter_list);
                assert_eq!(g.list_size(id, level).unwrap(), vec_list.len());
            }
        }
    }

    #[test]
    fn list_size_matches_membership_after_churn() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = SkipGraph::random((0..64).map(Key::new), &mut rng).unwrap();
        for i in 0..32u64 {
            g.remove_key(Key::new(i * 2)).unwrap();
            g.insert(Key::new(1000 + i), MembershipVector::parse("10").unwrap())
                .unwrap();
        }
        g.validate().unwrap();
        for id in g.node_ids().collect::<Vec<_>>() {
            for level in 0..=g.mvec_of(id).unwrap().len() {
                assert_eq!(
                    g.list_size(id, level).unwrap(),
                    g.list_of(id, level).unwrap().len()
                );
            }
        }
    }

    #[test]
    fn predecessor_and_successor_by_key() {
        let g = figure1_graph();
        let pred = g.predecessor_by_key(Key::new(13)).unwrap();
        assert_eq!(g.key_of(pred).unwrap().value(), 10);
        let succ = g.successor_by_key(Key::new(13)).unwrap();
        assert_eq!(g.key_of(succ).unwrap().value(), 18);
        // Keys between members resolve to the surrounding members.
        let pred = g.predecessor_by_key(Key::new(12)).unwrap();
        assert_eq!(g.key_of(pred).unwrap().value(), 10);
        assert_eq!(g.predecessor_by_key(Key::new(1)), None);
        assert_eq!(g.successor_by_key(Key::new(23)), None);
    }

    /// Builds the batch update for moving `id` to `new_mvec` (computing the
    /// diff level the way the transformation engine does).
    fn update_for(g: &SkipGraph, id: NodeId, new_mvec: MembershipVector) -> MembershipUpdate {
        let old = g.mvec_of(id).unwrap();
        MembershipUpdate {
            node: id,
            from_level: old.common_prefix_len(&new_mvec) + 1,
            new_mvec,
        }
    }

    #[test]
    fn batch_install_matches_per_node_install_on_random_scripts() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut batched = SkipGraph::random((0..128).map(Key::new), &mut rng).unwrap();
        let mut naive = batched.clone();
        let ids: Vec<NodeId> = batched.node_ids().collect();
        for round in 0..12u64 {
            let mut updates = Vec::new();
            for (i, &id) in ids.iter().enumerate() {
                // A deterministic mix: some nodes keep their vector, some
                // flip one mid bit, some grow, some shrink.
                let mut mvec = batched.mvec_of(id).unwrap();
                match (i as u64 + round) % 4 {
                    0 => {}
                    1 => {
                        let bits: Vec<Bit> =
                            mvec.iter().map(Bit::flipped).take(2).collect();
                        mvec.replace_suffix(1, bits).unwrap();
                    }
                    2 => {
                        mvec.push(Bit::from_u8(((i as u64 ^ round) & 1) as u8)).unwrap();
                    }
                    _ => {
                        let len = mvec.len();
                        mvec.truncate(len.saturating_sub(1));
                    }
                }
                if mvec != batched.mvec_of(id).unwrap() {
                    updates.push(update_for(&batched, id, mvec));
                }
            }
            let touched = batched.apply_membership_batch(&updates).unwrap();
            let expected: usize = updates
                .iter()
                .map(|u| {
                    let old = naive.mvec_of(u.node).unwrap();
                    old.len().max(u.new_mvec.len()) + 1 - u.from_level
                })
                .sum();
            assert_eq!(touched, expected);
            for u in &updates {
                naive.set_membership_vector(u.node, u.new_mvec).unwrap();
            }
            batched.validate().unwrap();
            // Observable agreement: same vectors, same list orders, same
            // neighbours at every level.
            for &id in &ids {
                assert_eq!(batched.mvec_of(id).unwrap(), naive.mvec_of(id).unwrap());
                let top = batched.mvec_of(id).unwrap().len();
                for level in 0..=top + 1 {
                    assert_eq!(
                        batched.neighbors(id, level).unwrap(),
                        naive.neighbors(id, level).unwrap(),
                        "neighbours diverge at level {level}"
                    );
                    assert_eq!(
                        batched.list_of(id, level).unwrap(),
                        naive.list_of(id, level).unwrap(),
                        "list order diverges at level {level}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_install_skips_noop_entries_and_rejects_dead_nodes() {
        let mut g = figure1_graph();
        let m = g.node_by_key(Key::new(13)).unwrap();
        let noop = update_for(&g, m, g.mvec_of(m).unwrap());
        assert_eq!(g.apply_membership_batch(&[noop]).unwrap(), 0);
        g.validate().unwrap();
        let dead = MembershipUpdate {
            node: NodeId::from_raw(999),
            from_level: 1,
            new_mvec: MembershipVector::empty(),
        };
        assert!(matches!(
            g.apply_membership_batch(&[dead]),
            Err(SkipGraphError::UnknownNode(_))
        ));
        // The failed batch must not have mutated anything.
        g.validate().unwrap();
    }

    #[test]
    fn batch_install_handles_growth_shrink_and_list_creation() {
        let mut g = figure1_graph();
        let a = g.node_by_key(Key::new(1)).unwrap();
        let m = g.node_by_key(Key::new(13)).unwrap();
        let r = g.node_by_key(Key::new(18)).unwrap();
        let updates = vec![
            // M joins the 00-subgraph and grows a level ("000").
            update_for(&g, m, MembershipVector::parse("000").unwrap()),
            // R shrinks to a bare "1".
            update_for(&g, r, MembershipVector::parse("1").unwrap()),
            // A grows downward into a brand-new "000" list with M.
            update_for(&g, a, MembershipVector::parse("000").unwrap()),
        ];
        g.apply_membership_batch(&updates).unwrap();
        g.validate().unwrap();
        let p000 = Prefix::root()
            .child(Bit::Zero)
            .child(Bit::Zero)
            .child(Bit::Zero);
        let keys: Vec<u64> = g
            .list_members(3, p000)
            .iter()
            .map(|id| g.key_of(*id).unwrap().value())
            .collect();
        assert_eq!(keys, vec![1, 13]);
        assert_eq!(g.mvec_of(r).unwrap().to_string(), "1");
    }

    #[test]
    fn adversarial_layout_join_falls_back_to_head_scan() {
        // A long run of "10" nodes separates the joining "11" node from its
        // only "11"-list companion: the leftward walk along level 1 would
        // scan the whole run, so the capped walk must fall back to a head
        // scan of the (tiny) target list and still splice correctly.
        let mut g = SkipGraph::new();
        g.insert(Key::new(0), MembershipVector::parse("11").unwrap())
            .unwrap();
        for k in 1..=200u64 {
            g.insert(Key::new(k), MembershipVector::parse("10").unwrap())
                .unwrap();
        }
        g.insert(Key::new(201), MembershipVector::parse("11").unwrap())
            .unwrap();
        g.validate().unwrap();
        let joined = g.node_by_key(Key::new(201)).unwrap();
        let (l, r) = g.neighbors(joined, 2).unwrap();
        assert_eq!(g.key_of(l.unwrap()).unwrap().value(), 0);
        assert_eq!(r, None);

        // The mirror case: the joining node becomes the new head of the
        // target list (its key is below every member).
        let mut g = SkipGraph::new();
        for k in 1..=200u64 {
            g.insert(Key::new(k), MembershipVector::parse("10").unwrap())
                .unwrap();
        }
        g.insert(Key::new(201), MembershipVector::parse("11").unwrap())
            .unwrap();
        g.insert(Key::new(0), MembershipVector::parse("11").unwrap())
            .unwrap();
        g.validate().unwrap();
        let joined = g.node_by_key(Key::new(0)).unwrap();
        let (l, r) = g.neighbors(joined, 2).unwrap();
        assert_eq!(l, None);
        assert_eq!(g.key_of(r.unwrap()).unwrap().value(), 201);
    }

    #[test]
    fn neighbors_stay_consistent_with_list_order_under_suffix_updates() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut g = SkipGraph::random((0..96).map(Key::new), &mut rng).unwrap();
        let ids: Vec<NodeId> = g.node_ids().collect();
        for (i, &id) in ids.iter().enumerate() {
            let bits = [
                Bit::from_u8((i % 2) as u8),
                Bit::from_u8(((i / 2) % 2) as u8),
            ];
            g.set_membership_suffix(id, 1, bits).unwrap();
        }
        g.validate().unwrap();
        for &id in &ids {
            for level in 0..=g.mvec_of(id).unwrap().len() {
                let list = g.list_of(id, level).unwrap();
                let pos = list.iter().position(|x| *x == id).unwrap();
                let (l, r) = g.neighbors(id, level).unwrap();
                assert_eq!(l, pos.checked_sub(1).map(|p| list[p]));
                assert_eq!(r, list.get(pos + 1).copied());
            }
        }
    }
}
