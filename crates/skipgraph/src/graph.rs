//! The skip graph structure.
//!
//! Nodes live in an arena and are addressed by [`NodeId`]. The linked lists
//! of every level are materialised as ordered indices (`BTreeMap<Key,
//! NodeId>` keyed by the list's membership-vector [`Prefix`]), which makes
//! neighbour queries, list enumeration and *incremental* membership-vector
//! updates cheap. This "central store, distributed semantics" representation
//! is the idiomatic Rust answer to overlay pointers: algorithm code
//! manipulates ids, never references, and the distributed cost of each
//! operation is accounted separately by the callers (see the `dsg` crate).

use std::collections::{BTreeMap, HashMap};

use rand::{Rng, RngExt};

use crate::error::SkipGraphError;
use crate::ids::{Key, NodeId};
use crate::mvec::{Bit, MembershipVector, Prefix};
use crate::Result;

/// A single node of the skip graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    key: Key,
    mvec: MembershipVector,
    dummy: bool,
}

impl NodeEntry {
    /// The node's key (its position in every linked list).
    pub fn key(&self) -> Key {
        self.key
    }

    /// The node's membership vector.
    pub fn mvec(&self) -> &MembershipVector {
        &self.mvec
    }

    /// Whether the node is a *dummy* node: a logical routing-only node
    /// inserted to protect the a-balance property (paper §IV-F).
    pub fn is_dummy(&self) -> bool {
        self.dummy
    }
}

/// Identifies one linked list of the skip graph: the list at `level` whose
/// members share the membership-vector `prefix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListRef {
    /// The level of the list (0 = base list containing every node).
    pub level: usize,
    /// The membership-vector prefix shared by all members.
    pub prefix: Prefix,
}

impl ListRef {
    /// The base list at level 0.
    pub fn root() -> Self {
        ListRef {
            level: 0,
            prefix: Prefix::root(),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Slot {
    entry: Option<NodeEntry>,
}

/// A skip graph: the family-`S` data structure of the paper.
///
/// See the [crate-level documentation](crate) for an overview and an
/// example.
#[derive(Debug, Clone, Default)]
pub struct SkipGraph {
    arena: Vec<Slot>,
    free: Vec<u32>,
    by_key: BTreeMap<Key, NodeId>,
    /// `levels[d]` maps each length-`d` prefix to the ordered list of nodes
    /// whose membership vector starts with that prefix. `levels[0]` contains
    /// a single entry for [`Prefix::root`].
    levels: Vec<HashMap<Prefix, BTreeMap<Key, NodeId>>>,
}

impl SkipGraph {
    /// Creates an empty skip graph.
    pub fn new() -> Self {
        SkipGraph::default()
    }

    /// Builds a skip graph from an explicit set of `(key, membership
    /// vector)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if two members share a key.
    pub fn from_members<I>(members: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Key, MembershipVector)>,
    {
        let mut graph = SkipGraph::new();
        for (key, mvec) in members {
            graph.insert(key, mvec)?;
        }
        Ok(graph)
    }

    /// Builds a skip graph over `keys` with uniformly random membership
    /// vectors, extending every node's vector until it is singleton — the
    /// standard randomised skip graph construction.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if `keys` contains
    /// duplicates.
    pub fn random<I, R>(keys: I, rng: &mut R) -> Result<Self>
    where
        I: IntoIterator<Item = Key>,
        R: Rng + ?Sized,
    {
        let mut graph = SkipGraph::new();
        for key in keys {
            graph.insert_random(key, rng)?;
        }
        Ok(graph)
    }

    // ------------------------------------------------------------------
    // Insertion / removal
    // ------------------------------------------------------------------

    /// Inserts a node with an explicit membership vector.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if a node with `key` already
    /// exists.
    pub fn insert(&mut self, key: Key, mvec: MembershipVector) -> Result<NodeId> {
        self.insert_inner(key, mvec, false)
    }

    /// Inserts a *dummy* node (a routing-only placeholder used to repair the
    /// a-balance property, paper §IV-F).
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if a node with `key` already
    /// exists.
    pub fn insert_dummy(&mut self, key: Key, mvec: MembershipVector) -> Result<NodeId> {
        self.insert_inner(key, mvec, true)
    }

    /// Inserts a node choosing membership-vector bits uniformly at random
    /// until the node is the only member of its top-level list — the
    /// standard skip graph join.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if a node with `key` already
    /// exists.
    pub fn insert_random<R>(&mut self, key: Key, rng: &mut R) -> Result<NodeId>
    where
        R: Rng + ?Sized,
    {
        if self.by_key.contains_key(&key) {
            return Err(SkipGraphError::DuplicateKey(key));
        }
        // Walk down: starting from the root list, keep choosing random bits
        // while the list joined at the current level is non-empty.
        // Membership vectors are conceptually infinite strings of random
        // bits; as in the standard join protocol, any existing member of a
        // list the new node passes through that has not yet materialised its
        // bit for the next level draws one now (otherwise two nodes could
        // stay together in a large list forever, destroying the O(log n)
        // routing guarantee).
        let mut mvec = MembershipVector::empty();
        let mut prefix = Prefix::root();
        loop {
            let level = prefix.level();
            let members: Vec<NodeId> = self
                .level_map(level)
                .and_then(|m| m.get(&prefix))
                .map(|l| l.values().copied().collect())
                .unwrap_or_default();
            if members.is_empty() {
                break;
            }
            // Lazily extend existing members that stop at this level.
            for id in members {
                let len = self
                    .entry(id)
                    .expect("list member is live")
                    .mvec
                    .len();
                if len < level + 1 {
                    let bit: Bit = rng.random_bool(0.5).into();
                    self.set_membership_suffix(id, len + 1, [bit])?;
                }
            }
            let bit: Bit = rng.random_bool(0.5).into();
            mvec.push(bit)?;
            prefix = prefix.child(bit);
        }
        self.insert_inner(key, mvec, false)
    }

    fn insert_inner(&mut self, key: Key, mvec: MembershipVector, dummy: bool) -> Result<NodeId> {
        if self.by_key.contains_key(&key) {
            return Err(SkipGraphError::DuplicateKey(key));
        }
        let entry = NodeEntry { key, mvec, dummy };
        let id = match self.free.pop() {
            Some(raw) => {
                let id = NodeId(raw);
                self.arena[id.index()].entry = Some(entry);
                id
            }
            None => {
                let id = NodeId(self.arena.len() as u32);
                self.arena.push(Slot { entry: Some(entry) });
                id
            }
        };
        self.by_key.insert(key, id);
        self.index_node(id);
        Ok(id)
    }

    /// Removes the node with the given key, returning its entry.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownKey`] if no such node exists.
    pub fn remove_key(&mut self, key: Key) -> Result<NodeEntry> {
        let id = self
            .by_key
            .get(&key)
            .copied()
            .ok_or(SkipGraphError::UnknownKey(key))?;
        self.remove(id)
    }

    /// Removes a node by id, returning its entry.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] if the id is not live.
    pub fn remove(&mut self, id: NodeId) -> Result<NodeEntry> {
        let entry = self
            .arena
            .get(id.index())
            .and_then(|s| s.entry.clone())
            .ok_or(SkipGraphError::UnknownNode(id))?;
        self.unindex_node(id);
        self.by_key.remove(&entry.key);
        self.arena[id.index()].entry = None;
        self.free.push(id.raw());
        Ok(entry)
    }

    // ------------------------------------------------------------------
    // Index maintenance
    // ------------------------------------------------------------------

    fn index_node(&mut self, id: NodeId) {
        let (key, len, mvec) = {
            let entry = self.entry(id).expect("node just inserted");
            (entry.key, entry.mvec.len(), entry.mvec)
        };
        for level in 0..=len {
            let prefix = mvec.prefix(level);
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, HashMap::new);
            }
            self.levels[level]
                .entry(prefix)
                .or_default()
                .insert(key, id);
        }
    }

    fn unindex_node(&mut self, id: NodeId) {
        let (key, len, mvec) = {
            let entry = self.entry(id).expect("node must be live");
            (entry.key, entry.mvec.len(), entry.mvec)
        };
        for level in 0..=len {
            let prefix = mvec.prefix(level);
            if let Some(map) = self.levels.get_mut(level) {
                if let Some(list) = map.get_mut(&prefix) {
                    list.remove(&key);
                    if list.is_empty() {
                        map.remove(&prefix);
                    }
                }
            }
        }
        while matches!(self.levels.last(), Some(m) if m.is_empty()) {
            self.levels.pop();
        }
    }

    /// Replaces the membership-vector bits of `id` from `from_level` upward
    /// with `new_bits`, keeping levels `1..from_level` unchanged, and updates
    /// all list indices. This is the primitive the self-adjusting algorithm
    /// uses to "move" a node between subgraphs.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id and
    /// [`SkipGraphError::HeightLimitExceeded`] if the resulting vector would
    /// be too long.
    pub fn set_membership_suffix<I>(
        &mut self,
        id: NodeId,
        from_level: usize,
        new_bits: I,
    ) -> Result<()>
    where
        I: IntoIterator<Item = Bit>,
    {
        if self.entry(id).is_none() {
            return Err(SkipGraphError::UnknownNode(id));
        }
        self.unindex_node(id);
        let result = {
            let entry = self.arena[id.index()]
                .entry
                .as_mut()
                .expect("checked live above");
            entry.mvec.replace_suffix(from_level, new_bits)
        };
        // Re-index regardless of whether the suffix replacement failed so
        // that the node is never left out of the lists.
        self.index_node(id);
        result
    }

    /// Replaces the node's entire membership vector.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn set_membership_vector(&mut self, id: NodeId, mvec: MembershipVector) -> Result<()> {
        if self.entry(id).is_none() {
            return Err(SkipGraphError::UnknownNode(id));
        }
        self.unindex_node(id);
        self.arena[id.index()]
            .entry
            .as_mut()
            .expect("checked live above")
            .mvec = mvec;
        self.index_node(id);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    fn entry(&self, id: NodeId) -> Option<&NodeEntry> {
        self.arena.get(id.index()).and_then(|s| s.entry.as_ref())
    }

    fn level_map(&self, level: usize) -> Option<&HashMap<Prefix, BTreeMap<Key, NodeId>>> {
        self.levels.get(level)
    }

    /// Number of live nodes (including dummy nodes).
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Number of live dummy nodes.
    pub fn dummy_count(&self) -> usize {
        self.by_key
            .values()
            .filter(|id| self.entry(**id).map(|e| e.dummy).unwrap_or(false))
            .count()
    }

    /// Returns the node entry for a live id.
    pub fn node(&self, id: NodeId) -> Option<&NodeEntry> {
        self.entry(id)
    }

    /// Returns the id of the node holding `key`.
    pub fn node_by_key(&self, key: Key) -> Option<NodeId> {
        self.by_key.get(&key).copied()
    }

    /// The key of a live node.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn key_of(&self, id: NodeId) -> Result<Key> {
        self.entry(id)
            .map(|e| e.key)
            .ok_or(SkipGraphError::UnknownNode(id))
    }

    /// The membership vector of a live node.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn mvec_of(&self, id: NodeId) -> Result<MembershipVector> {
        self.entry(id)
            .map(|e| e.mvec)
            .ok_or(SkipGraphError::UnknownNode(id))
    }

    /// Iterates over all live node ids in ascending key order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.by_key.values().copied()
    }

    /// Iterates over all live keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.by_key.keys().copied()
    }

    /// The height of the skip graph: the smallest `H` such that every node
    /// is the only member of its list at level `H`. An empty or singleton
    /// graph has height 0.
    pub fn height(&self) -> usize {
        for (level, map) in self.levels.iter().enumerate() {
            if map.values().all(|list| list.len() <= 1) {
                return level;
            }
        }
        self.levels.len()
    }

    /// The largest level index for which any list exists.
    pub fn max_level(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    // ------------------------------------------------------------------
    // List queries
    // ------------------------------------------------------------------

    /// Members (in ascending key order) of the list at `level` identified by
    /// `prefix`. Nodes whose membership vector is *shorter* than `level` are
    /// considered singleton at that level and are only reported when the
    /// requested prefix equals their full vector.
    pub fn list_members(&self, level: usize, prefix: Prefix) -> Vec<NodeId> {
        match self.level_map(level).and_then(|m| m.get(&prefix)) {
            Some(list) => list.values().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Members of the list identified by a [`ListRef`].
    pub fn list(&self, list: ListRef) -> Vec<NodeId> {
        self.list_members(list.level, list.prefix)
    }

    /// Members of the list that `id` belongs to at `level`, in ascending key
    /// order. For levels above the node's vector length the node is
    /// singleton, so only `id` itself is returned.
    pub fn list_of(&self, id: NodeId, level: usize) -> Result<Vec<NodeId>> {
        let entry = self.entry(id).ok_or(SkipGraphError::UnknownNode(id))?;
        if level > entry.mvec.len() {
            return Ok(vec![id]);
        }
        let prefix = entry.mvec.prefix(level);
        Ok(self.list_members(level, prefix))
    }

    /// Size of the list that `id` belongs to at `level`.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn list_size(&self, id: NodeId, level: usize) -> Result<usize> {
        Ok(self.list_of(id, level)?.len())
    }

    /// All lists at `level`, as `(prefix, members)` pairs. Pairs are
    /// returned in an unspecified order; members are in ascending key order.
    pub fn lists_at_level(&self, level: usize) -> Vec<(Prefix, Vec<NodeId>)> {
        match self.level_map(level) {
            Some(map) => map
                .iter()
                .map(|(p, list)| (*p, list.values().copied().collect()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Left and right neighbours of `id` in its list at `level` (the
    /// doubly-linked-list pointers of the distributed structure).
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn neighbors(&self, id: NodeId, level: usize) -> Result<(Option<NodeId>, Option<NodeId>)> {
        let entry = self.entry(id).ok_or(SkipGraphError::UnknownNode(id))?;
        if level > entry.mvec.len() {
            return Ok((None, None));
        }
        let prefix = entry.mvec.prefix(level);
        let list = match self.level_map(level).and_then(|m| m.get(&prefix)) {
            Some(list) => list,
            None => return Ok((None, None)),
        };
        let left = list
            .range(..entry.key)
            .next_back()
            .map(|(_, id)| *id);
        let right = list
            .range((std::ops::Bound::Excluded(entry.key), std::ops::Bound::Unbounded))
            .next()
            .map(|(_, id)| *id);
        Ok((left, right))
    }

    /// The highest level at which `u` and `v` share a linked list (the
    /// paper's `α` for a communication request), i.e. the length of the
    /// longest common prefix of their membership vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] if either id is dead.
    pub fn common_level(&self, u: NodeId, v: NodeId) -> Result<usize> {
        let eu = self.entry(u).ok_or(SkipGraphError::UnknownNode(u))?;
        let ev = self.entry(v).ok_or(SkipGraphError::UnknownNode(v))?;
        Ok(eu.mvec.common_prefix_len(&ev.mvec))
    }

    /// The degree of a node: the number of *distinct* neighbours over all
    /// levels. Skip graphs guarantee `O(log n)` degree.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownNode`] for a dead id.
    pub fn degree(&self, id: NodeId) -> Result<usize> {
        let entry = self.entry(id).ok_or(SkipGraphError::UnknownNode(id))?;
        let mut distinct = std::collections::HashSet::new();
        for level in 0..=entry.mvec.len() {
            let (l, r) = self.neighbors(id, level)?;
            if let Some(l) = l {
                distinct.insert(l);
            }
            if let Some(r) = r {
                distinct.insert(r);
            }
        }
        Ok(distinct.len())
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Checks the structural invariants of the skip graph:
    ///
    /// 1. every live node appears exactly once in the base list;
    /// 2. for every level `d ≥ 1`, the members of each list are exactly the
    ///    members of the parent list whose membership-vector bit at level
    ///    `d` selects it (list refinement);
    /// 3. list membership recorded in the indices matches the nodes'
    ///    membership vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::InvariantViolated`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<()> {
        // 1. base list contains every live node.
        let base = self.list_members(0, Prefix::root());
        if base.len() != self.by_key.len() {
            return Err(SkipGraphError::InvariantViolated(format!(
                "base list has {} members but {} nodes are live",
                base.len(),
                self.by_key.len()
            )));
        }
        // 2/3. refinement + prefix consistency.
        for (level, map) in self.levels.iter().enumerate() {
            for (prefix, list) in map {
                if prefix.level() != level {
                    return Err(SkipGraphError::InvariantViolated(format!(
                        "prefix {prefix} stored at level {level}"
                    )));
                }
                for (&key, &id) in list {
                    let entry = self
                        .entry(id)
                        .ok_or_else(|| SkipGraphError::InvariantViolated(format!(
                            "dead node {id} recorded in list {prefix} at level {level}"
                        )))?;
                    if entry.key != key {
                        return Err(SkipGraphError::InvariantViolated(format!(
                            "node {id} stored under key {key} but has key {}",
                            entry.key
                        )));
                    }
                    if entry.mvec.prefix(level) != *prefix {
                        return Err(SkipGraphError::InvariantViolated(format!(
                            "node {id} with vector {} is recorded in list {prefix} at level {level}",
                            entry.mvec
                        )));
                    }
                }
                if level >= 1 {
                    let parent_prefix = prefix.parent().expect("level >= 1 has a parent");
                    let parent = self.list_members(level - 1, parent_prefix);
                    for id in list.values() {
                        if !parent.contains(id) {
                            return Err(SkipGraphError::InvariantViolated(format!(
                                "node {id} appears in list {prefix} at level {level} but not in its parent list"
                            )));
                        }
                    }
                }
            }
        }
        // Every node must be indexed at every level up to its vector length.
        for (&key, &id) in &self.by_key {
            let entry = self.entry(id).ok_or_else(|| {
                SkipGraphError::InvariantViolated(format!("key {key} maps to dead node {id}"))
            })?;
            for level in 0..=entry.mvec.len() {
                let prefix = entry.mvec.prefix(level);
                let present = self
                    .level_map(level)
                    .and_then(|m| m.get(&prefix))
                    .map(|l| l.get(&key) == Some(&id))
                    .unwrap_or(false);
                if !present {
                    return Err(SkipGraphError::InvariantViolated(format!(
                        "node {id} missing from its list at level {level}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds the 6-node skip graph of Figure 1 of the paper.
    ///
    /// Level-1 0-sublist = {A, J, M}, 1-sublist = {G, R, W};
    /// level-2 lists: {A, J} (00), {M} (01), {G, W} (10), {R} (11).
    pub(crate) fn figure1_graph() -> SkipGraph {
        let members = [
            (1u64, "00"),  // A
            (7, "10"),     // G
            (10, "00"),    // J
            (13, "01"),    // M
            (18, "11"),    // R
            (23, "10"),    // W
        ];
        SkipGraph::from_members(
            members
                .iter()
                .map(|(k, v)| (Key::new(*k), MembershipVector::parse(v).unwrap())),
        )
        .unwrap()
    }

    #[test]
    fn figure1_structure_matches_paper() {
        let g = figure1_graph();
        assert_eq!(g.len(), 6);
        g.validate().unwrap();

        let a = g.node_by_key(Key::new(1)).unwrap();
        let m = g.node_by_key(Key::new(13)).unwrap();
        let gg = g.node_by_key(Key::new(7)).unwrap();
        let w = g.node_by_key(Key::new(23)).unwrap();

        // Level-1 list containing A is {A, J, M}.
        let list = g.list_of(a, 1).unwrap();
        let keys: Vec<u64> = list.iter().map(|id| g.key_of(*id).unwrap().value()).collect();
        assert_eq!(keys, vec![1, 10, 13]);

        // The highest common level for A and M is 1 (as stated in §IV-C).
        assert_eq!(g.common_level(a, m).unwrap(), 1);

        // The 10-subgraph contains exactly G and W (as stated in §III).
        let p10 = Prefix::root().child(Bit::One).child(Bit::Zero);
        let sub: Vec<u64> = g
            .list_members(2, p10)
            .iter()
            .map(|id| g.key_of(*id).unwrap().value())
            .collect();
        assert_eq!(sub, vec![7, 23]);
        assert_eq!(g.common_level(gg, w).unwrap(), 2);
    }

    #[test]
    fn base_list_is_sorted_by_key() {
        let g = figure1_graph();
        let keys: Vec<u64> = g.keys().map(|k| k.value()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn neighbors_follow_key_order_within_lists() {
        let g = figure1_graph();
        let j = g.node_by_key(Key::new(10)).unwrap();
        // Base level: J's neighbours are G (7) and M (13).
        let (l, r) = g.neighbors(j, 0).unwrap();
        assert_eq!(g.key_of(l.unwrap()).unwrap().value(), 7);
        assert_eq!(g.key_of(r.unwrap()).unwrap().value(), 13);
        // Level 1 (list {A, J, M}): neighbours are A and M.
        let (l, r) = g.neighbors(j, 1).unwrap();
        assert_eq!(g.key_of(l.unwrap()).unwrap().value(), 1);
        assert_eq!(g.key_of(r.unwrap()).unwrap().value(), 13);
        // Level 2 (list {A, J}): only left neighbour A.
        let (l, r) = g.neighbors(j, 2).unwrap();
        assert_eq!(g.key_of(l.unwrap()).unwrap().value(), 1);
        assert_eq!(r, None);
    }

    #[test]
    fn height_of_figure1_is_three_levels_of_splitting() {
        let g = figure1_graph();
        // Lists at level 2 are {A,J} and {G,W}, which still have 2 members,
        // so the height (first all-singleton level) is 3.
        assert_eq!(g.height(), 3);
    }

    #[test]
    fn insert_duplicate_key_fails() {
        let mut g = figure1_graph();
        let err = g.insert(Key::new(13), MembershipVector::empty()).unwrap_err();
        assert_eq!(err, SkipGraphError::DuplicateKey(Key::new(13)));
    }

    #[test]
    fn remove_then_reinsert_reuses_slots() {
        let mut g = figure1_graph();
        let before = g.len();
        let removed = g.remove_key(Key::new(13)).unwrap();
        assert_eq!(removed.key(), Key::new(13));
        assert_eq!(g.len(), before - 1);
        g.validate().unwrap();
        g.insert(Key::new(13), MembershipVector::parse("01").unwrap())
            .unwrap();
        assert_eq!(g.len(), before);
        g.validate().unwrap();
    }

    #[test]
    fn random_construction_is_valid_and_logarithmic() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = SkipGraph::random((0..256).map(Key::new), &mut rng).unwrap();
        g.validate().unwrap();
        assert_eq!(g.len(), 256);
        // With random membership vectors the height is O(log n) w.h.p.; use
        // a generous constant.
        assert!(g.height() <= 4 * 8, "height {} too large", g.height());
        // Degree is O(log n) as well.
        for id in g.node_ids() {
            assert!(g.degree(id).unwrap() <= 4 * 8);
        }
    }

    #[test]
    fn set_membership_suffix_moves_node_between_subgraphs() {
        let mut g = figure1_graph();
        let m = g.node_by_key(Key::new(13)).unwrap();
        // Move M from the 01-subgraph to the 00-subgraph (joining A and J).
        g.set_membership_suffix(m, 2, [Bit::Zero]).unwrap();
        g.validate().unwrap();
        let a = g.node_by_key(Key::new(1)).unwrap();
        assert_eq!(g.common_level(a, m).unwrap(), 2);
        let list = g.list_of(m, 2).unwrap();
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn dummy_nodes_are_flagged_and_counted() {
        let mut g = figure1_graph();
        g.insert_dummy(Key::new(14), MembershipVector::parse("01").unwrap())
            .unwrap();
        assert_eq!(g.dummy_count(), 1);
        assert_eq!(g.len(), 7);
        g.validate().unwrap();
    }

    #[test]
    fn unknown_ids_are_reported() {
        let g = figure1_graph();
        let bogus = NodeId::from_raw(999);
        assert!(matches!(
            g.key_of(bogus),
            Err(SkipGraphError::UnknownNode(_))
        ));
        assert!(matches!(
            g.neighbors(bogus, 0),
            Err(SkipGraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn common_level_for_identical_vectors_is_full_length() {
        let mut g = SkipGraph::new();
        let a = g.insert(Key::new(1), MembershipVector::parse("11").unwrap()).unwrap();
        let b = g.insert(Key::new(2), MembershipVector::parse("11").unwrap()).unwrap();
        assert_eq!(g.common_level(a, b).unwrap(), 2);
        assert_eq!(g.height(), 3);
    }
}
