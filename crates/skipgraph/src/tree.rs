//! The binary-tree-of-linked-lists view of a skip graph (Figure 1(b)).
//!
//! The paper reasons about skip graphs through an equivalent binary tree in
//! which every tree node represents one linked list: the root is the level-0
//! list, and the 0-sublist / 1-sublist of a list are its left / right
//! children. Each subtree rooted at a list is a *sub skip graph*
//! ("subgraph") whose members share a membership-vector prefix.
//!
//! [`TreeView`] materialises this view from a [`SkipGraph`] snapshot. It is
//! used by the structural experiments (E1), for pretty-printing instances in
//! examples, and as an independent cross-check of the list indices.

use std::fmt;

use crate::graph::{ListRef, SkipGraph};
use crate::ids::{Key, NodeId};
use crate::mvec::{Bit, Prefix};

/// One node of the tree view: a linked list of the skip graph together with
/// its (up to two) sublists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Which list this tree node represents.
    pub list: ListRef,
    /// The members of the list, in ascending key order.
    pub members: Vec<NodeId>,
    /// The 0-subgraph (left child), if the list splits.
    pub zero: Option<Box<TreeNode>>,
    /// The 1-subgraph (right child), if the list splits.
    pub one: Option<Box<TreeNode>>,
}

impl TreeNode {
    /// Number of tree nodes (lists) in this subtree.
    pub fn size(&self) -> usize {
        1 + self.zero.as_ref().map_or(0, |c| c.size()) + self.one.as_ref().map_or(0, |c| c.size())
    }

    /// Depth of the subtree: a leaf has depth 1.
    pub fn depth(&self) -> usize {
        1 + self
            .zero
            .as_ref()
            .map_or(0, |c| c.depth())
            .max(self.one.as_ref().map_or(0, |c| c.depth()))
    }

    /// Returns `true` if this list does not split further (it is a leaf of
    /// the tree view).
    pub fn is_leaf(&self) -> bool {
        self.zero.is_none() && self.one.is_none()
    }

    /// Iterates over the subtree in preorder.
    pub fn preorder(&self) -> Vec<&TreeNode> {
        let mut out = vec![self];
        if let Some(zero) = &self.zero {
            out.extend(zero.preorder());
        }
        if let Some(one) = &self.one {
            out.extend(one.preorder());
        }
        out
    }
}

/// The complete tree view of a skip graph snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeView {
    root: Option<TreeNode>,
    node_count: usize,
}

impl TreeView {
    /// Builds the tree view of the given skip graph.
    pub fn build(graph: &SkipGraph) -> Self {
        if graph.is_empty() {
            return TreeView {
                root: None,
                node_count: 0,
            };
        }
        let root = Self::build_node(graph, 0, Prefix::root());
        TreeView {
            root,
            node_count: graph.len(),
        }
    }

    fn build_node(graph: &SkipGraph, level: usize, prefix: Prefix) -> Option<TreeNode> {
        // The tree view owns its member vectors, so this is the one place
        // the borrowing list iterator is collected.
        let members: Vec<NodeId> = graph.list_iter(level, prefix).collect();
        if members.is_empty() {
            return None;
        }
        let (zero, one) = if members.len() >= 2 {
            (
                Self::build_node(graph, level + 1, prefix.child(Bit::Zero)).map(Box::new),
                Self::build_node(graph, level + 1, prefix.child(Bit::One)).map(Box::new),
            )
        } else {
            (None, None)
        };
        Some(TreeNode {
            list: ListRef { level, prefix },
            members,
            zero,
            one,
        })
    }

    /// The root of the tree (the level-0 list), or `None` for an empty
    /// graph.
    pub fn root(&self) -> Option<&TreeNode> {
        self.root.as_ref()
    }

    /// Number of skip-graph nodes represented.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of lists (tree nodes).
    pub fn list_count(&self) -> usize {
        self.root.as_ref().map_or(0, |r| r.size())
    }

    /// Depth of the tree: the number of levels of the skip graph including
    /// the leaves.
    pub fn depth(&self) -> usize {
        self.root.as_ref().map_or(0, |r| r.depth())
    }

    /// Finds the tree node representing the subgraph designated by `prefix`
    /// (the paper's "b-subgraph" notation), if it exists.
    pub fn subgraph(&self, prefix: Prefix) -> Option<&TreeNode> {
        let mut current = self.root.as_ref()?;
        for level in 1..=prefix.level() {
            let bit = prefix.bit(level).expect("level within prefix");
            current = match bit {
                Bit::Zero => current.zero.as_deref()?,
                Bit::One => current.one.as_deref()?,
            };
        }
        Some(current)
    }

    /// Cross-checks the tree view against the graph: every tree node's
    /// member set must equal the graph's list, every internal node's members
    /// must be exactly the union of its children's members, and leaves must
    /// be singletons or lists that never split.
    pub fn is_consistent_with(&self, graph: &SkipGraph) -> bool {
        let root = match self.root.as_ref() {
            Some(r) => r,
            None => return graph.is_empty(),
        };
        for node in root.preorder() {
            let matches = graph
                .list_iter(node.list.level, node.list.prefix)
                .eq(node.members.iter().copied());
            if !matches {
                return false;
            }
            if !node.is_leaf() {
                let mut union: Vec<NodeId> = Vec::new();
                if let Some(zero) = &node.zero {
                    union.extend(&zero.members);
                }
                if let Some(one) = &node.one {
                    union.extend(&one.members);
                }
                let mut sorted_union: Vec<Key> = union
                    .iter()
                    .map(|id| graph.key_of(*id).expect("member is live"))
                    .collect();
                sorted_union.sort();
                let members: Vec<Key> = node
                    .members
                    .iter()
                    .map(|id| graph.key_of(*id).expect("member is live"))
                    .collect();
                if sorted_union != members {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the tree with one line per list, indented by level, showing
    /// the keys of the members — matching the layout of Figure 1(b).
    pub fn render(&self, graph: &SkipGraph) -> String {
        let mut out = String::new();
        if let Some(root) = &self.root {
            Self::render_node(root, graph, 0, &mut out);
        }
        out
    }

    fn render_node(node: &TreeNode, graph: &SkipGraph, indent: usize, out: &mut String) {
        use fmt::Write as _;
        let keys: Vec<String> = node
            .members
            .iter()
            .map(|id| {
                graph
                    .key_of(*id)
                    .map(|k| k.to_string())
                    .unwrap_or_else(|_| "?".to_string())
            })
            .collect();
        let _ = writeln!(
            out,
            "{}[L{} {}] {}",
            "  ".repeat(indent),
            node.list.level,
            node.list.prefix,
            keys.join(" ")
        );
        if let Some(zero) = &node.zero {
            Self::render_node(zero, graph, indent + 1, out);
        }
        if let Some(one) = &node.one {
            Self::render_node(one, graph, indent + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn figure1_tree_matches_the_paper() {
        let g = fixtures::figure1();
        let tree = TreeView::build(&g);
        assert!(tree.is_consistent_with(&g));
        assert_eq!(tree.node_count(), 6);

        let root = tree.root().unwrap();
        assert_eq!(root.members.len(), 6);

        // Level-1 children: {A, J, M} and {G, R, W}.
        let zero = root.zero.as_ref().unwrap();
        let one = root.one.as_ref().unwrap();
        let zero_keys: Vec<u64> = zero.members.iter().map(|id| g.key_of(*id).unwrap().value()).collect();
        let one_keys: Vec<u64> = one.members.iter().map(|id| g.key_of(*id).unwrap().value()).collect();
        assert_eq!(zero_keys, vec![1, 10, 13]);
        assert_eq!(one_keys, vec![7, 18, 23]);

        // The 10-subgraph (right child then left child) holds G and W.
        let p10 = Prefix::root().child(Bit::One).child(Bit::Zero);
        let sub = tree.subgraph(p10).unwrap();
        let keys: Vec<u64> = sub.members.iter().map(|id| g.key_of(*id).unwrap().value()).collect();
        assert_eq!(keys, vec![7, 23]);
    }

    #[test]
    fn tree_depth_matches_graph_height_plus_leaves() {
        let g = fixtures::perfectly_balanced(16);
        let tree = TreeView::build(&g);
        assert!(tree.is_consistent_with(&g));
        // A perfectly balanced graph over 16 keys has lists at levels
        // 0..=4; the deepest chain of splitting lists has 5 tree nodes.
        assert_eq!(tree.depth(), 5);
        assert_eq!(g.height(), 4);
    }

    #[test]
    fn empty_graph_has_empty_tree() {
        let g = SkipGraph::new();
        let tree = TreeView::build(&g);
        assert!(tree.root().is_none());
        assert_eq!(tree.list_count(), 0);
        assert!(tree.is_consistent_with(&g));
    }

    #[test]
    fn render_contains_every_key() {
        let g = fixtures::figure1();
        let tree = TreeView::build(&g);
        let text = tree.render(&g);
        for key in [1u64, 7, 10, 13, 18, 23] {
            assert!(text.contains(&key.to_string()), "missing {key} in\n{text}");
        }
    }

    #[test]
    fn random_graph_tree_is_consistent() {
        let g = fixtures::uniform_random(200, 3);
        let tree = TreeView::build(&g);
        assert!(tree.is_consistent_with(&g));
        assert_eq!(tree.node_count(), 200);
        // Each of the n nodes ends in a singleton list, so there are at
        // least n leaves, hence at least 2n - 1-ish lists overall; sanity
        // check only a loose lower bound.
        assert!(tree.list_count() >= 200);
    }
}
