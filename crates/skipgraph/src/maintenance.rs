//! Node addition and removal (paper §IV-G).
//!
//! DSG relies on the *standard* skip graph join and leave procedures: a new
//! node searches for its position at the base level, then chooses random
//! membership-vector bits and links itself into one list per level until it
//! is singleton; a leaving node simply splices itself out of every list.
//! Both take `O(log n)` rounds in expectation. After either operation the
//! self-adjusting layer re-checks the a-balance property (see the `dsg`
//! crate).
//!
//! This module wraps the structural mutation with the round accounting the
//! rest of the reproduction uses.

use rand::Rng;

use crate::error::SkipGraphError;
use crate::graph::SkipGraph;
use crate::ids::{Key, NodeId};
use crate::Result;

/// Result of a node join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinOutcome {
    /// Id assigned to the new node.
    pub node: NodeId,
    /// Number of levels the node linked itself into (its membership-vector
    /// length).
    pub levels_joined: usize,
    /// Synchronous rounds charged to the join: the base-level search plus
    /// one neighbour search per level joined.
    pub rounds: usize,
}

/// Result of a node leave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaveOutcome {
    /// Key of the node that left.
    pub key: Key,
    /// Number of levels the node was linked into.
    pub levels_left: usize,
    /// Synchronous rounds charged to the leave (one splice per level).
    pub rounds: usize,
}

impl SkipGraph {
    /// Joins a new node with key `key` via the standard skip graph join:
    /// the node is routed to its base-level position starting from
    /// `introducer` (any existing node), then picks random membership-vector
    /// bits level by level.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::DuplicateKey`] if the key is already
    /// present, or [`SkipGraphError::UnknownKey`] if `introducer` does not
    /// exist. Joining an empty graph requires no introducer; pass `None`.
    pub fn join<R: Rng + ?Sized>(
        &mut self,
        key: Key,
        introducer: Option<Key>,
        rng: &mut R,
    ) -> Result<JoinOutcome> {
        if self.node_by_key(key).is_some() {
            return Err(SkipGraphError::DuplicateKey(key));
        }
        // Rounds for the base-level position search: route from the
        // introducer to the key's predecessor (or successor).
        let search_rounds = match introducer {
            Some(intro_key) => {
                let intro = self
                    .node_by_key(intro_key)
                    .ok_or(SkipGraphError::UnknownKey(intro_key))?;
                // Route toward the closest existing key.
                let target = self.closest_existing_key(key);
                match target {
                    Some(target_key) => self.route_ids(intro, self.node_by_key(target_key).expect("key exists"))?.hops(),
                    None => 0,
                }
            }
            None => {
                if !self.is_empty() {
                    return Err(SkipGraphError::InvariantViolated(
                        "joining a non-empty graph requires an introducer".to_string(),
                    ));
                }
                0
            }
        };
        let node = self.insert_random(key, rng)?;
        let levels_joined = self.mvec_of(node)?.len();
        Ok(JoinOutcome {
            node,
            levels_joined,
            // One neighbour search per level joined, plus the base search.
            rounds: search_rounds + levels_joined + 1,
        })
    }

    /// Removes the node with key `key` via the standard leave procedure.
    ///
    /// # Errors
    ///
    /// Returns [`SkipGraphError::UnknownKey`] if the key is not present.
    pub fn leave(&mut self, key: Key) -> Result<LeaveOutcome> {
        let id = self
            .node_by_key(key)
            .ok_or(SkipGraphError::UnknownKey(key))?;
        let levels_left = self.mvec_of(id)?.len();
        self.remove(id)?;
        Ok(LeaveOutcome {
            key,
            levels_left,
            rounds: levels_left + 1,
        })
    }

    /// Finds the live key closest to `key` (used as the join target).
    /// O(log n) via the key index rather than a linear scan.
    fn closest_existing_key(&self, key: Key) -> Option<Key> {
        let below = if self.node_by_key(key).is_some() {
            Some(key)
        } else {
            self.predecessor_by_key(key)
                .and_then(|id| self.key_of(id).ok())
        };
        let above = self
            .successor_by_key(key)
            .and_then(|id| self.key_of(id).ok());
        match (below, above) {
            (Some(b), Some(a)) => {
                if key.value() - b.value() <= a.value() - key.value() {
                    Some(b)
                } else {
                    Some(a)
                }
            }
            (Some(b), None) => Some(b),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn join_inserts_and_charges_logarithmic_rounds() {
        let mut g = fixtures::uniform_random(128, 21);
        let mut rng = StdRng::seed_from_u64(99);
        let outcome = g.join(Key::new(1000), Some(Key::new(0)), &mut rng).unwrap();
        assert!(g.node_by_key(Key::new(1000)).is_some());
        g.validate().unwrap();
        assert_eq!(outcome.levels_joined, g.mvec_of(outcome.node).unwrap().len());
        assert!(outcome.rounds >= outcome.levels_joined);
        assert!((outcome.rounds as f64) <= 12.0 * (129f64).log2());
    }

    #[test]
    fn join_into_empty_graph_needs_no_introducer() {
        let mut g = SkipGraph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = g.join(Key::new(5), None, &mut rng).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(outcome.levels_joined, 0);
    }

    #[test]
    fn join_into_nonempty_graph_requires_introducer() {
        let mut g = fixtures::figure1();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(g.join(Key::new(99), None, &mut rng).is_err());
    }

    #[test]
    fn duplicate_join_is_rejected() {
        let mut g = fixtures::figure1();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            g.join(Key::new(13), Some(Key::new(1)), &mut rng),
            Err(SkipGraphError::DuplicateKey(_))
        ));
    }

    #[test]
    fn leave_removes_from_every_level() {
        let mut g = fixtures::figure1();
        let outcome = g.leave(Key::new(13)).unwrap();
        assert_eq!(outcome.key, Key::new(13));
        assert_eq!(outcome.levels_left, 2);
        assert!(g.node_by_key(Key::new(13)).is_none());
        g.validate().unwrap();
        // Routing still works around the removed node.
        let r = g.route(Key::new(1), Key::new(23)).unwrap();
        assert_eq!(g.key_of(r.destination()).unwrap(), Key::new(23));
    }

    #[test]
    fn leave_unknown_key_fails() {
        let mut g = fixtures::figure1();
        assert!(matches!(
            g.leave(Key::new(999)),
            Err(SkipGraphError::UnknownKey(_))
        ));
    }

    #[test]
    fn churn_preserves_validity() {
        let mut g = fixtures::uniform_random(64, 5);
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..32u64 {
            g.join(Key::new(1000 + i), Some(Key::new(1)), &mut rng).unwrap();
            g.leave(Key::new(i * 2)).unwrap();
        }
        g.validate().unwrap();
        assert_eq!(g.len(), 64);
    }
}
