//! Deterministic fail-point registry for fault-injection testing.
//!
//! A *fail point* is a named site in the code (the [`sites`] catalog) that
//! can be **armed** to panic on its `n`-th hit. The robustness suites use
//! this to drive the epoch pipeline into its documented failure modes on
//! purpose — a plan-stage worker dying mid-plan, the membership installer
//! dying between two list splices, the dummy-reconciliation detection pass
//! dying after the install, the service ingest loop dying between epochs —
//! and then assert the containment story (`dsg::service`): plan-stage
//! faults abort the epoch with the engine untouched, apply-stage faults
//! poison the service with every in-flight ticket resolved. The `io.*`
//! sites extend the same registry into the durability layer
//! (`dsg::persist`): a journal append dying mid-frame, a snapshot or
//! manifest write dying mid-checkpoint — driven by the crash-recovery
//! harness, which then proves restart-replay equivalence.
//!
//! # Cost when disarmed
//!
//! [`hit`] is a single relaxed atomic load of a global armed-site counter
//! (no site lookup, no branch beyond the zero test), so production code
//! paths carry the instrumentation permanently. Everything slower lives in
//! the `#[cold]` armed path.
//!
//! # Determinism
//!
//! Triggers are countdown-based: [`arm`]`(site, nth)` fires the panic on
//! exactly the `nth` hit of that site from now, then disarms it. Seeded
//! schedules derive each site's countdown from a splitmix64 stream
//! ([`seeded_nth`]), so a fault-injection run is reproducible from one
//! `u64` seed.
//!
//! # Process-global state
//!
//! The registry is process-global (the sites live in code shared by every
//! engine instance), so concurrently running tests that arm fail points
//! would interfere. Tests serialise through [`exclusive`] and reset with
//! [`disarm_all`].

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Fail-point site inside the parallel epoch *plan* stage: hit once per
/// cluster planned (worker shard or inline). Firing here aborts the epoch
/// before any apply — the engine is untouched.
pub const PLAN_WORKER: &str = "plan.worker";

/// Fail-point site inside the ordered-splice membership installer
/// ([`SkipGraph::apply_membership_batch`](crate::SkipGraph::apply_membership_batch)):
/// hit once per spliced list, *after* the splice, so firing mid-batch
/// leaves the arena genuinely half-mutated. Firing here poisons a
/// `dsg::service`.
pub const APPLY_SPLICE: &str = "apply.splice";

/// Fail-point site at the head of the dummy-reconciliation detection pass
/// (pass 0 of the reconciling balance repair): hit once per cluster
/// reconciled. The pass itself is a pure read, but it runs after the
/// membership install of its epoch, so firing here is an apply-stage fault
/// (the epoch is already half-applied) and poisons a `dsg::service`.
pub const DUMMY_PASS0: &str = "dummy.pass0";

/// Fail-point site in the `dsg::service` ingest loop, hit once per drained
/// request batch *before* the engine is called. Firing here fails the
/// batch's tickets but leaves the engine untouched; the service keeps
/// serving.
pub const INGEST_LOOP: &str = "ingest.loop";

/// Fail-point site in the durable journal's frame writer (`dsg::persist`),
/// hit between the frame header and the frame payload reaching the file,
/// so firing here leaves a genuinely *torn* frame on disk — the exact
/// artifact the recovery path's torn-tail truncation must drop. In a
/// `dsg::service` the append failure is contained: the journal is rolled
/// back to the last committed frame, the batch's tickets fail typed, and
/// the engine is never called.
pub const IO_APPEND: &str = "io.append";

/// Fail-point site in the snapshot checkpoint writer (`dsg::persist`), hit
/// after the snapshot temp file is created but before its payload is
/// written. Firing here simulates a crash mid-checkpoint: a stray temp
/// file, no manifest update. A `dsg::service` abandons the checkpoint and
/// keeps serving; recovery uses the previous manifest binding.
pub const IO_SNAPSHOT: &str = "io.snapshot";

/// Fail-point site in the manifest writer (`dsg::persist`), hit after the
/// manifest temp file is written but before the atomic rename. Firing here
/// simulates a crash in the commit step of a checkpoint: the new snapshot
/// file exists but the manifest still binds the old one, which recovery
/// must honour (the journal suffix is replayed from the old offset).
pub const IO_MANIFEST: &str = "io.manifest";

const SITE_NAMES: [&str; 7] = [
    PLAN_WORKER,
    APPLY_SPLICE,
    DUMMY_PASS0,
    INGEST_LOOP,
    IO_APPEND,
    IO_SNAPSHOT,
    IO_MANIFEST,
];

/// Number of armed sites; the disarmed fast path of [`hit`] tests only
/// this.
static ARMED_SITES: AtomicU32 = AtomicU32::new(0);
/// Per-site countdown: 0 = disarmed, `n > 0` = fire on the `n`-th hit
/// from now.
static COUNTDOWNS: [AtomicU64; 7] = [const { AtomicU64::new(0) }; 7];
/// Per-site stall duration in milliseconds: 0 = the site panics when it
/// fires (the default), `ms > 0` = the firing hit *sleeps* that long
/// instead — the hang-injection mode stall-watchdog tests drive.
static SLEEP_MS: [AtomicU64; 7] = [const { AtomicU64::new(0) }; 7];
/// Per-site hit counters, recorded while *any* site is armed (coverage
/// evidence for the fault-injection soak).
static HITS: [AtomicU64; 7] = [const { AtomicU64::new(0) }; 7];
/// Serialisation lock for tests (the registry is process-global).
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// The catalog of named fail-point sites.
pub fn sites() -> &'static [&'static str] {
    &SITE_NAMES
}

fn index(site: &str) -> usize {
    SITE_NAMES
        .iter()
        .position(|&s| s == site)
        .unwrap_or_else(|| panic!("unknown fail-point site `{site}`"))
}

/// Serialises fail-point tests: the registry is process-global, so any
/// test that arms a site must hold this guard for its whole arm → run →
/// [`disarm_all`] window. A panic while holding it (most fail-point tests
/// panic on purpose somewhere) does not wedge later tests — poisoning is
/// ignored.
pub fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `site` to panic on its `nth` hit from now (`nth ≥ 1`; 1 = the very
/// next hit). Re-arming an already-armed site replaces its countdown. The
/// site disarms itself when it fires.
///
/// # Panics
///
/// Panics on an unknown site name or `nth == 0`.
pub fn arm(site: &str, nth: u64) {
    assert!(nth >= 1, "a fail point fires on the nth hit, nth >= 1");
    let i = index(site);
    SLEEP_MS[i].store(0, Ordering::SeqCst);
    if COUNTDOWNS[i].swap(nth, Ordering::SeqCst) == 0 {
        ARMED_SITES.fetch_add(1, Ordering::SeqCst);
    }
}

/// Arms `site` to **stall** (sleep `ms` milliseconds on the firing hit,
/// then continue) instead of panicking — hang injection for stall-watchdog
/// tests. Countdown semantics match [`arm`]: fires on the `nth` hit from
/// now, then disarms itself.
///
/// # Panics
///
/// Panics on an unknown site name, `nth == 0`, or `ms == 0` (use [`arm`]
/// for the panic mode).
pub fn arm_sleep(site: &str, nth: u64, ms: u64) {
    assert!(nth >= 1, "a fail point fires on the nth hit, nth >= 1");
    assert!(ms >= 1, "a stall fail point needs a positive sleep");
    let i = index(site);
    SLEEP_MS[i].store(ms, Ordering::SeqCst);
    if COUNTDOWNS[i].swap(nth, Ordering::SeqCst) == 0 {
        ARMED_SITES.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarms every site and zeroes every hit counter, restoring the
/// registry to its pristine (free) state.
pub fn disarm_all() {
    for countdown in &COUNTDOWNS {
        countdown.store(0, Ordering::SeqCst);
    }
    for sleep in &SLEEP_MS {
        sleep.store(0, Ordering::SeqCst);
    }
    for hits in &HITS {
        hits.store(0, Ordering::SeqCst);
    }
    ARMED_SITES.store(0, Ordering::SeqCst);
}

/// The number of times `site` was hit while the registry had any site
/// armed (hits with the registry fully disarmed are not counted — the
/// fast path never reaches the counter).
///
/// # Panics
///
/// Panics on an unknown site name.
pub fn hit_count(site: &str) -> u64 {
    HITS[index(site)].load(Ordering::SeqCst)
}

/// Derives a deterministic countdown in `1..=max_nth` for `site` from
/// `seed` (splitmix64 of the seed and the site's catalog index), so a
/// whole fault-injection schedule reproduces from one `u64`.
///
/// # Panics
///
/// Panics on an unknown site name or `max_nth == 0`.
pub fn seeded_nth(seed: u64, site: &str, max_nth: u64) -> u64 {
    assert!(max_nth >= 1, "the countdown range must be non-empty");
    let mut z = seed
        .wrapping_add((index(site) as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % max_nth + 1
}

/// Registers one hit of `site`. Free (one relaxed load) while the
/// registry is fully disarmed.
///
/// # Panics
///
/// Panics — that is the whole point — when the hit exhausts an armed
/// site's countdown. The panic payload is
/// `` fail point `<site>` fired ``.
#[inline]
pub fn hit(site: &'static str) {
    if ARMED_SITES.load(Ordering::Relaxed) == 0 {
        return;
    }
    hit_armed(site);
}

#[cold]
fn hit_armed(site: &'static str) {
    let i = index(site);
    HITS[i].fetch_add(1, Ordering::SeqCst);
    let mut current = COUNTDOWNS[i].load(Ordering::SeqCst);
    loop {
        if current == 0 {
            return;
        }
        match COUNTDOWNS[i].compare_exchange(
            current,
            current - 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {
                if current == 1 {
                    ARMED_SITES.fetch_sub(1, Ordering::SeqCst);
                    let stall_ms = SLEEP_MS[i].swap(0, Ordering::SeqCst);
                    if stall_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(stall_ms));
                        return;
                    }
                    panic!("fail point `{site}` fired");
                }
                return;
            }
            Err(actual) => current = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hits_are_free_and_uncounted() {
        let _guard = exclusive();
        disarm_all();
        hit(PLAN_WORKER);
        hit(APPLY_SPLICE);
        assert_eq!(hit_count(PLAN_WORKER), 0);
        assert_eq!(hit_count(APPLY_SPLICE), 0);
    }

    #[test]
    fn armed_site_fires_on_exactly_the_nth_hit_then_disarms() {
        let _guard = exclusive();
        disarm_all();
        arm(PLAN_WORKER, 3);
        hit(PLAN_WORKER);
        hit(PLAN_WORKER);
        let fired = std::panic::catch_unwind(|| hit(PLAN_WORKER));
        assert!(fired.is_err(), "third hit must fire");
        assert_eq!(hit_count(PLAN_WORKER), 3);
        // The site disarmed itself; further hits are counted (another
        // armed site may still exist) but never fire.
        arm(APPLY_SPLICE, 100);
        hit(PLAN_WORKER);
        assert_eq!(hit_count(PLAN_WORKER), 4);
        disarm_all();
        assert_eq!(hit_count(PLAN_WORKER), 0);
    }

    #[test]
    fn other_sites_are_counted_but_do_not_fire() {
        let _guard = exclusive();
        disarm_all();
        arm(DUMMY_PASS0, 1);
        hit(INGEST_LOOP);
        hit(INGEST_LOOP);
        assert_eq!(hit_count(INGEST_LOOP), 2);
        assert_eq!(hit_count(DUMMY_PASS0), 0);
        let fired = std::panic::catch_unwind(|| hit(DUMMY_PASS0));
        assert!(fired.is_err());
        disarm_all();
    }

    #[test]
    fn seeded_countdowns_are_deterministic_and_in_range() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for &site in sites() {
                let nth = seeded_nth(seed, site, 8);
                assert!((1..=8).contains(&nth));
                assert_eq!(nth, seeded_nth(seed, site, 8), "must reproduce");
            }
        }
        // Different sites get (generally) different countdowns from one
        // seed — the schedule is per-site, not one shared value.
        let all: Vec<u64> = sites().iter().map(|s| seeded_nth(7, s, 1 << 20)).collect();
        let distinct: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn sleep_armed_site_stalls_instead_of_panicking() {
        let _guard = exclusive();
        disarm_all();
        arm_sleep(INGEST_LOOP, 2, 30);
        hit(INGEST_LOOP);
        let started = std::time::Instant::now();
        hit(INGEST_LOOP);
        assert!(
            started.elapsed() >= std::time::Duration::from_millis(25),
            "the firing hit must stall"
        );
        // The site disarmed itself (and dropped back to the free fast
        // path, so further hits are not even counted).
        hit(INGEST_LOOP);
        assert_eq!(hit_count(INGEST_LOOP), 2);
        // A later plain `arm` is back in panic mode.
        arm(INGEST_LOOP, 1);
        assert!(std::panic::catch_unwind(|| hit(INGEST_LOOP)).is_err());
        disarm_all();
    }

    #[test]
    fn unknown_sites_are_rejected() {
        assert!(std::panic::catch_unwind(|| hit_count("no.such.site")).is_err());
    }
}
