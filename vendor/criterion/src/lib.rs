//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion API the workspace's `benches/`
//! use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a plain
//! monotonic-clock measurement loop.
//!
//! Each benchmark is warmed up, then timed over `sample_size` samples; the
//! median per-iteration time is reported on stdout as
//! `bench: <group>/<id>  median <t> (<samples> samples)`.
//!
//! Environment knobs (used by CI to keep bench smokes short):
//!
//! * `BENCH_SAMPLE_SIZE` — overrides every group's sample size.
//! * `BENCH_WARMUP_MS` — warm-up budget per benchmark (default 200 ms,
//!   `0` disables warm-up).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering, displayed as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<N: Into<String>, P: fmt::Display>(name: N, param: P) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: String::new(),
        }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: fmt::Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let report = run_benchmark(self.effective_sample_size(), &mut f);
        self.criterion.record(&label, report);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id);
        let report = run_benchmark(self.effective_sample_size(), &mut |b| f(b, input));
        self.criterion.record(&label, report);
        self
    }

    /// Finishes the group (kept for API compatibility; reports are printed
    /// eagerly).
    pub fn finish(&mut self) {}

    fn effective_sample_size(&self) -> usize {
        env_usize("BENCH_SAMPLE_SIZE").unwrap_or(self.sample_size)
    }
}

/// One benchmark's aggregate measurement.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Median per-iteration time.
    pub median: Duration,
    /// Number of samples taken.
    pub samples: usize,
}

/// The harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    reports: Vec<(String, Report)>,
}

impl Criterion {
    /// Parses harness configuration from the process environment (the
    /// upstream API reads CLI arguments; this stand-in only uses env vars).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let report = run_benchmark(env_usize("BENCH_SAMPLE_SIZE").unwrap_or(20), &mut f);
        self.record(name, report);
        self
    }

    /// All reports recorded so far, as `(label, report)` pairs.
    pub fn reports(&self) -> &[(String, Report)] {
        &self.reports
    }

    /// Prints a final summary (invoked by `criterion_main!`).
    pub fn final_summary(&self) {
        eprintln!("criterion-shim: {} benchmarks measured", self.reports.len());
    }

    fn record(&mut self, label: &str, report: Report) {
        println!(
            "bench: {label:<48} median {:>12?} ({} samples)",
            report.median, report.samples
        );
        self.reports.push((label.to_string(), report));
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.parse().ok()
}

fn run_benchmark<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Report {
    // Warm-up: run the routine once (cheaply) to page code in and pick an
    // iteration count that gives measurable samples.
    let warmup_budget =
        Duration::from_millis(env_usize("BENCH_WARMUP_MS").map_or(200, |ms| ms as u64));
    let mut probe = Bencher {
        samples: Vec::with_capacity(1),
        sample_count: 1,
        iters_per_sample: 1,
    };
    let probe_start = Instant::now();
    f(&mut probe);
    let single = probe
        .samples
        .first()
        .copied()
        .unwrap_or_else(|| probe_start.elapsed())
        .max(Duration::from_nanos(1));
    // Aim for ~5 ms per sample, capped to keep total time bounded.
    let iters_per_sample = (Duration::from_millis(5).as_nanos() / single.as_nanos())
        .clamp(1, 1_000_000) as u64;
    if !warmup_budget.is_zero() {
        let warm_start = Instant::now();
        while warm_start.elapsed() < warmup_budget {
            let mut b = Bencher {
                samples: Vec::with_capacity(1),
                sample_count: 1,
                iters_per_sample: 1,
            };
            f(&mut b);
        }
    }
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_count: sample_size,
        iters_per_sample,
    };
    f(&mut bencher);
    let mut per_iter: Vec<Duration> = bencher
        .samples
        .iter()
        .map(|d| *d / iters_per_sample as u32)
        .collect();
    per_iter.sort();
    let median = per_iter
        .get(per_iter.len() / 2)
        .copied()
        .unwrap_or_default();
    Report {
        median,
        samples: per_iter.len(),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_report() {
        std::env::set_var("BENCH_WARMUP_MS", "0");
        std::env::set_var("BENCH_SAMPLE_SIZE", "3");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.reports().len(), 1);
        assert_eq!(c.reports()[0].1.samples, 3);
    }

    #[test]
    fn groups_and_ids_render_paths() {
        let id = BenchmarkId::new("route", 256);
        assert_eq!(id.to_string(), "route/256");
    }
}
