//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API this workspace's tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`Just`], `collection::vec`, `ProptestConfig`, the
//! `proptest!` macro and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! panics immediately with the seed of the failing iteration, which is
//! enough for the deterministic, small-input properties tested here. Set
//! `PROPTEST_CASES` to override the number of cases per property and
//! `PROPTEST_SEED` to reproduce a reported failure.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The random source handed to strategies.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner for one test case, seeded deterministically.
    pub fn new_with_seed(seed: u64) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to build a second strategy to draw
    /// from (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.inner.new_value(runner)).new_value(runner)
    }
}

/// A strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u64, u32, usize, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a size drawn from
    /// a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn uniformly from `size` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner.rng().random_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count, honouring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Runs `body` for every case of a property (used by the `proptest!`
/// macro expansion; not part of the public upstream API).
pub fn run_property<F: FnMut(&mut TestRunner)>(name: &str, config: &ProptestConfig, mut body: F) {
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok());
    let cases = if base_seed.is_some() {
        1
    } else {
        config.effective_cases()
    };
    for case in 0..cases as u64 {
        // Derive a per-case seed from the property name so properties are
        // independent of declaration order.
        let mut seed = base_seed.unwrap_or(0xD5_6A5u64);
        for byte in name.bytes() {
            seed = seed.wrapping_mul(0x100000001b3).wrapping_add(byte as u64);
        }
        let seed = seed.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15));
        let mut runner = TestRunner::new_with_seed(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut runner);
        }));
        if let Err(payload) = result {
            eprintln!(
                "proptest-shim: property '{name}' failed at case {case}; \
                 rerun with PROPTEST_SEED={seed}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Everything a test normally imports.
pub mod prelude {
    pub use super::collection;
    pub use super::{Just, ProptestConfig, Strategy, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure; the shim does
/// not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests. Mirrors the upstream macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0u64..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_property(stringify!($name), &config, |__runner| {
                $crate::__proptest_bindings! { (__runner) $($params)* }
                $body
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    (($runner:ident)) => {};
    (($runner:ident) $pat:pat in $strategy:expr) => {
        let $pat = $crate::Strategy::new_value(&$strategy, $runner);
    };
    (($runner:ident) $pat:pat in $strategy:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::new_value(&$strategy, $runner);
        $crate::__proptest_bindings! { ($runner) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (2u64..20).prop_flat_map(|n| (Just(n), 0u64..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_generate_in_bounds(x in 3u64..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependency((n, k) in pair()) {
            prop_assert!(k < n);
        }

        #[test]
        fn vec_strategy_sizes_and_elements(v in collection::vec(0i64..100, 1..30)) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            prop_assert!(v.iter().all(|e| (0..100).contains(e)));
        }
    }

    #[test]
    fn failing_property_reports_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_property("always_fails", &ProptestConfig::with_cases(2), |_r| {
                panic!("boom");
            });
        });
        assert!(result.is_err());
    }
}
