//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the (small) API subset the workspace uses: the [`Rng`] core
//! trait, the [`RngExt`] extension methods (`random`, `random_bool`,
//! `random_range`), [`SeedableRng`] and the deterministic [`rngs::StdRng`]
//! generator (xoshiro256++, seeded via SplitMix64). Sequences are
//! deterministic per seed but are *not* bit-compatible with upstream
//! `rand`; everything in this repository only relies on per-seed
//! determinism, never on specific streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random number generation: a source of uniform `u64`s.
pub trait Rng {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`f64` in `[0, 1)`, integers over their full range, `bool` fair coin).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                // Modular span; 0 encodes the full 64-bit range.
                let span = (end as u128)
                    .wrapping_sub(start as u128)
                    .wrapping_add(1) as u64;
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl StandardSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u16, u8, i64, i32, i16, i8);

impl SampleRange<u64> for Range<u64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start
            .wrapping_add(uniform_below(rng, self.end.wrapping_sub(self.start)))
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample an empty range");
        let span = end.wrapping_sub(start).wrapping_add(1);
        if span == 0 {
            return rng.next_u64();
        }
        start.wrapping_add(uniform_below(rng, span))
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as u32
    }
}

impl SampleRange<u32> for RangeInclusive<u32> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> u32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample an empty range");
        start + uniform_below(rng, (end - start) as u64 + 1) as u32
    }
}

/// Unbiased uniform draw from `[0, bound)` via Lemire-style rejection
/// (multiply-shift with a widening check). `bound == 0` means the full
/// 64-bit range.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges a value of type `T` can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value from the type's standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. Small, fast, and statistically solid for
    /// simulation purposes (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Exports the generator's full internal state, so a consumer can
        /// persist a generator mid-stream (checkpoint/restore) and resume
        /// it bit-for-bit with [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`]; the resulting stream continues exactly where
        /// the captured generator left off.
        ///
        /// An all-zero state is the one degenerate fixed point of
        /// xoshiro256++ (it generates zeros forever). It is unreachable
        /// from [`SeedableRng::seed_from_u64`], so it can only come from a
        /// corrupted checkpoint; it is rejected by falling back to the
        /// seed-0 state rather than silently looping on zero.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as super::SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0usize..=3);
            assert!(y <= 3);
            let z: f64 = rng.random();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn random_bool_respects_extremes_and_rates() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&rate), "rate {rate} off from 0.25");
    }

    #[test]
    fn uniform_draws_cover_small_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero degenerate state is rejected, not honoured.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> bool {
            rng.random_bool(0.5)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut dyn Rng = &mut rng;
        let _ = draw(dynrng);
    }
}
