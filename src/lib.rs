//! Workspace-root umbrella crate for the DSG reproduction.
//!
//! This crate exists so the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`) have a package to hang
//! off; it simply re-exports the member crates. Library users should
//! depend on the member crates (`dsg`, `dsg-skipgraph`, …) directly.

#![forbid(unsafe_code)]

pub use dsg;
pub use dsg_baselines;
pub use dsg_bench;
pub use dsg_metrics;
pub use dsg_skipgraph;
pub use dsg_workloads;
