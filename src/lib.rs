//! Workspace-root umbrella crate for the DSG reproduction.
//!
//! This crate hangs the repository-level integration tests (`tests/`) and
//! runnable examples (`examples/`) off one package and re-exports the
//! member crates. **The supported library surface is [`dsg::prelude`]**
//! (re-exported here as [`prelude`]): build a `DsgSession` with
//! `DsgSession::builder()`, submit typed `Request`s one at a time or in
//! epoch-batched form, and observe progress through `DsgObserver` hooks:
//!
//! ```rust
//! use dsg_repro::prelude::*;
//!
//! # fn main() -> Result<(), DsgError> {
//! let mut session = DsgSession::builder().peers(0..16).seed(7).build()?;
//! session.submit_batch(&[
//!     Request::communicate(0, 9),
//!     Request::communicate(3, 12),
//! ])?;
//! # Ok(())
//! # }
//! ```
//!
//! The member crates stay reachable for the specialised surfaces
//! (workload generators, baselines, the CONGEST simulator, the benchmark
//! plumbing), but applications should not need to depend on them
//! directly.

#![forbid(unsafe_code)]

pub use dsg;
pub use dsg_baselines;
pub use dsg_bench;
pub use dsg_metrics;
pub use dsg_skipgraph;
pub use dsg_workloads;

pub use dsg::prelude;
