//! Working-set property demonstration (Theorem 2): the distance between a
//! pair that keeps communicating is bounded by the logarithm of its working
//! set number — the number of peers that "interfered" since the pair last
//! talked — no matter how large the network is.
//!
//! Run with `cargo run --release --example working_set_demo`.

use dsg::prelude::*;
use dsg_metrics::WorkingSetTracker;
use dsg_workloads::{RotatingHotSet, Workload};

fn main() -> Result<(), DsgError> {
    let n = 512u64;
    let mut session = DsgSession::builder().peers(0..n).seed(11).build()?;
    let mut tracker = WorkingSetTracker::new(n as usize);
    let mut workload = RotatingHotSet::new(n, 8, 0.9, 50, 5);

    let mut worst_ratio = 0.0f64;
    let mut samples = 0usize;
    println!("request  pair          T_i   log2(T_i)  distance  ratio");
    for i in 0..2000usize {
        let request = workload.next_request();
        let (u, v) = request.pair();
        let ws = tracker.record(u, v);
        // Measure the distance *before* serving (the structure as the
        // request finds it), then let DSG adapt.
        let distance = session.engine().peer_distance(u, v)?;
        session.submit(request)?;
        if ws < n as usize {
            let log_ws = (ws.max(2) as f64).log2();
            let ratio = distance as f64 / log_ws.max(1.0);
            worst_ratio = worst_ratio.max(ratio);
            samples += 1;
            if i % 200 == 0 {
                println!(
                    "{i:>7}  {u:>4}→{v:<4}  {ws:>6}  {log_ws:>9.2}  {distance:>8}  {ratio:>5.2}"
                );
            }
        }
    }
    println!(
        "\nover {samples} repeat requests the worst distance / log2(working set) ratio was {worst_ratio:.2}"
    );
    println!(
        "(Theorem 2 bounds this ratio by a constant; the balance parameter here is a = {})",
        session.engine().config().a
    );
    Ok(())
}
