//! Quickstart: build a session over a self-adjusting skip graph, submit
//! typed requests — one at a time and as an epoch-batch — and watch the
//! topology adapt.
//!
//! Run with `cargo run --release --example quickstart`.

use dsg::prelude::*;

fn main() -> Result<(), DsgError> {
    // A network of 64 peers with the default balance parameter (a = 3).
    // The builder validates the configuration instead of panicking.
    let mut session = DsgSession::builder()
        .peers(0..64)
        .seed(42)
        .install(InstallStrategy::Batched)
        .build()?;
    println!(
        "built a skip graph over {} peers, height {}",
        session.len(),
        session.height()
    );

    // The first request between two arbitrary peers routes through the
    // balanced structure in O(log n) hops ...
    let first = session.submit(Request::communicate(5, 58))?;
    let first = first.request_outcome().expect("communication outcome");
    println!(
        "request #1  5 → 58: routing cost {}, transformation {} rounds, α = {}",
        first.routing_cost,
        first.transformation_rounds(),
        first.alpha
    );

    // ... and leaves the pair directly linked, so repeating it is free.
    let second = session.submit(Request::communicate(5, 58))?;
    println!(
        "request #2  5 → 58: routing cost {} (directly linked: {})",
        second.request_outcome().expect("communication outcome").routing_cost,
        session.engine().are_directly_linked(5, 58)?
    );

    // A batch of requests is served in *epochs*: every pair routes first,
    // then one merged transformation per cluster of overlapping subtrees,
    // and ONE install pass per epoch — however many pairs it holds.
    let batch = [
        Request::communicate(20, 33),
        Request::communicate(41, 2),
        Request::communicate(7, 55),
    ];
    let outcome = session.submit_batch(&batch)?;
    println!(
        "batch of {}: {} epoch(s), {} cluster(s), {} install pass(es)",
        batch.len(),
        outcome.epochs,
        outcome.clusters,
        outcome.install_passes
    );

    // Unrelated traffic does not tear the hot pair apart.
    let third = session.submit(Request::communicate(5, 58))?;
    println!(
        "request #6  5 → 58: routing cost {} after unrelated traffic",
        third.request_outcome().expect("communication outcome").routing_cost
    );

    // Membership changes and clock control use the same typed vocabulary.
    session.submit_batch(&[
        Request::Join(100),
        Request::Leave(63),
        Request::communicate(100, 5),
    ])?;
    println!(
        "after churn: {} peers, height {}, {} dummy nodes, a-balanced: {}",
        session.len(),
        session.height(),
        session.engine().dummy_count(),
        session.engine().balance_report().is_balanced()
    );

    println!(
        "totals: {} requests in {} epochs, average cost {:.2} rounds",
        session.stats().requests,
        session.epochs(),
        session.stats().average_cost()
    );
    Ok(())
}
