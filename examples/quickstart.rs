//! Quickstart: build a self-adjusting skip graph, send a few requests, and
//! watch the topology adapt.
//!
//! Run with `cargo run -p dsg-bench --example quickstart`.

use dsg::{DsgConfig, DynamicSkipGraph};

fn main() -> Result<(), dsg::DsgError> {
    // A network of 64 peers with the default balance parameter (a = 3).
    let mut net = DynamicSkipGraph::new(0..64, DsgConfig::default().with_seed(42))?;
    println!(
        "built a skip graph over {} peers, height {}",
        net.len(),
        net.height()
    );

    // The first request between two arbitrary peers routes through the
    // balanced structure in O(log n) hops ...
    let first = net.communicate(5, 58)?;
    println!(
        "request #1  5 → 58: routing cost {}, transformation {} rounds, α = {}",
        first.routing_cost,
        first.transformation_rounds(),
        first.alpha
    );

    // ... and leaves the pair directly linked, so repeating it is free.
    let second = net.communicate(5, 58)?;
    println!(
        "request #2  5 → 58: routing cost {} (directly linked: {})",
        second.routing_cost,
        net.are_directly_linked(5, 58)?
    );

    // Unrelated traffic does not tear the hot pair apart.
    net.communicate(20, 33)?;
    net.communicate(41, 2)?;
    let third = net.communicate(5, 58)?;
    println!(
        "request #5  5 → 58: routing cost {} after unrelated traffic",
        third.routing_cost
    );

    // Membership changes use the standard skip graph join/leave.
    net.add_peer(100)?;
    net.remove_peer(63)?;
    net.communicate(100, 5)?;
    println!(
        "after churn: {} peers, height {}, {} dummy nodes, a-balanced: {}",
        net.len(),
        net.height(),
        net.dummy_count(),
        net.balance_report().is_balanced()
    );

    println!(
        "totals: {} requests, average cost {:.2} rounds",
        net.stats().requests,
        net.stats().average_cost()
    );
    Ok(())
}
