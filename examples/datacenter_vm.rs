//! The VM-migration scenario from the paper's conclusion: communication in a
//! data center has several locality levels (rack, pod, global). A
//! self-adjusting overlay pulls the chatty VM pairs close together so that
//! intra-rack traffic stops paying global routing costs.
//!
//! Run with `cargo run --release --example datacenter_vm`.

use dsg::DsgConfig;
use dsg_baselines::StaticSkipGraph;
use dsg_bench::{f2, format_table, run_baseline, run_dsg};
use dsg_workloads::{Datacenter, Workload};

fn main() {
    let n = 256u64;
    let requests = 4000usize;
    let mut workload = Datacenter::conventional(n, 3);
    let trace = workload.generate(requests);
    let probe = Datacenter::conventional(n, 3);

    let dsg_run = run_dsg(n, DsgConfig::default().with_seed(9), &trace);
    let mut static_graph = StaticSkipGraph::new(n);
    let static_costs = run_baseline(&mut static_graph, &trace);

    // Break the averages down by locality class.
    let mut rows = Vec::new();
    for (label, filter) in [
        (
            "intra-rack",
            Box::new(|u: u64, v: u64| probe.rack_of(u) == probe.rack_of(v))
                as Box<dyn Fn(u64, u64) -> bool>,
        ),
        (
            "intra-pod",
            Box::new(|u: u64, v: u64| {
                probe.pod_of(u) == probe.pod_of(v) && probe.rack_of(u) != probe.rack_of(v)
            }),
        ),
        (
            "global",
            Box::new(|u: u64, v: u64| probe.pod_of(u) != probe.pod_of(v)),
        ),
    ] {
        let mut dsg_sum = 0usize;
        let mut static_sum = 0usize;
        let mut count = 0usize;
        for (i, request) in trace.iter().enumerate() {
            let (u, v) = request.pair();
            if filter(u, v) {
                dsg_sum += dsg_run.routing_costs[i];
                static_sum += static_costs[i];
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        rows.push(vec![
            label.to_string(),
            count.to_string(),
            f2(dsg_sum as f64 / count as f64),
            f2(static_sum as f64 / count as f64),
        ]);
    }

    println!("data-center workload over {n} VMs, {requests} requests\n");
    println!(
        "{}",
        format_table(
            &["traffic class", "requests", "DSG avg cost", "static avg cost"],
            &rows
        )
    );
    println!(
        "overall: DSG {:.2} vs static {:.2} intermediate nodes per request",
        dsg_run.avg_routing(),
        static_costs.iter().sum::<usize>() as f64 / static_costs.len() as f64
    );
}
