//! Skewed-workload comparison: the self-adjusting skip graph (DSG) versus
//! the static skip graph and a SplayNet overlay under Zipf traffic of
//! increasing skew.
//!
//! This is the scenario the paper's introduction motivates: most real-world
//! communication patterns are skewed, and a self-adjusting topology should
//! exploit that. Run with
//! `cargo run --release --example skewed_workload`.

use dsg::DsgConfig;
use dsg_baselines::{SplayNet, StaticSkipGraph, WorkingSetOracle};
use dsg_bench::{f2, format_table, run_baseline, run_dsg};
use dsg_workloads::{Workload, ZipfPairs};

fn main() {
    let n = 256u64;
    let requests = 3000usize;
    println!("Zipf workload over {n} peers, {requests} requests per skew level\n");

    let mut rows = Vec::new();
    for alpha in [0.0f64, 0.6, 0.9, 1.2, 1.5] {
        let trace = ZipfPairs::new(n, alpha, 7).generate(requests);

        let dsg_run = run_dsg(n, DsgConfig::default().with_seed(1), &trace);
        let mut static_graph = StaticSkipGraph::new(n);
        let static_costs = run_baseline(&mut static_graph, &trace);
        let mut splaynet = SplayNet::new(n);
        let splay_costs = run_baseline(&mut splaynet, &trace);
        let mut oracle = WorkingSetOracle::new(n);
        let oracle_costs = run_baseline(&mut oracle, &trace);

        let avg = |costs: &[usize]| costs.iter().sum::<usize>() as f64 / costs.len() as f64;
        rows.push(vec![
            f2(alpha),
            f2(dsg_run.avg_routing()),
            f2(avg(&static_costs)),
            f2(avg(&splay_costs)),
            f2(avg(&oracle_costs)),
            f2(dsg_run.avg_routing() / avg(&static_costs).max(1e-9)),
        ]);
    }

    println!(
        "{}",
        format_table(
            &[
                "zipf α",
                "DSG routing",
                "static skip",
                "splaynet",
                "WS bound",
                "DSG/static"
            ],
            &rows
        )
    );
    println!("Lower DSG/static ratios at higher skew show the benefit of self-adjustment.");
}
