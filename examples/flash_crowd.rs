//! Flash-crowd demonstration of the adaptation policy: the same trace —
//! uniform background traffic with one sudden burst of a few hot pairs —
//! replayed twice, once with the restructure-always default and once with
//! the frequency-sketch admission gate on.
//!
//! The gate should keep restructuring work (touched `(node, level)` pairs)
//! low while the traffic is uniform, admit the crowd once its pairs get
//! hot in the sketch, and still serve the burst at a comparable routing
//! cost.
//!
//! Run with `cargo run --release --example flash_crowd`.

use dsg::prelude::*;
use dsg_workloads::{FlashCrowd, Workload};

fn replay(policy: PolicyConfig, trace: &[Request]) -> Result<RunStats, DsgError> {
    let mut session = DsgSession::builder()
        .peers(0..512u64)
        .seed(11)
        .policy(policy)
        .build()?;
    for chunk in trace.chunks(16) {
        session.submit_batch(chunk)?;
    }
    Ok(*session.stats())
}

fn main() -> Result<(), DsgError> {
    // 2000 uniform requests, then a 2000-request burst where 4 fixed pairs
    // take 95% of the traffic, then 2000 uniform requests again.
    let trace = FlashCrowd::new(512, 4, 2000, 2000, 0.95, 7).generate(6000);

    let off = replay(PolicyConfig::default(), &trace)?;
    let on = replay(PolicyConfig::gated(), &trace)?;

    println!("policy  routing-cost  touched-pairs  gated  budgeted  aging");
    for (name, stats) in [("off", &off), ("on", &on)] {
        println!(
            "{name:<6}  {:>12}  {:>13}  {:>5}  {:>8}  {:>5}",
            stats.total_routing_cost,
            stats.transform_touched_pairs,
            stats.pairs_gated,
            stats.restructures_budgeted,
            stats.sketch_aging_passes,
        );
    }

    let saved = off
        .transform_touched_pairs
        .saturating_sub(on.transform_touched_pairs);
    println!(
        "\nthe gate skipped restructuring for {} of {} requests, touching {} fewer (node, level) pairs",
        on.pairs_gated,
        trace.len(),
        saved
    );
    println!(
        "routing cost ratio (on / off): {:.3}",
        on.total_routing_cost as f64 / off.total_routing_cost.max(1) as f64
    );
    Ok(())
}
